"""Tests for the MPI-like communicator."""

import numpy as np
import pytest

from repro.hw.specs import OPTERON_2216_2P, QDR_INFINIBAND
from repro.net import ANY, Communicator, Fabric, StarTopology
from repro.sim import Environment


def make_comm(env, ranks=4, gpus_per_node=2):
    n_nodes = (ranks + gpus_per_node - 1) // gpus_per_node
    topo = StarTopology(max(n_nodes, 1), QDR_INFINIBAND)
    fab = Fabric(env, topo, OPTERON_2216_2P)
    rank_to_node = [r // gpus_per_node for r in range(ranks)]
    return Communicator(env, fab, rank_to_node)


def test_send_recv_roundtrip():
    env = Environment()
    comm = make_comm(env)
    got = []

    def sender(env):
        yield from comm.send(0, 1, {"hello": 7}, nbytes=100, tag=5)

    def receiver(env):
        msg = yield comm.recv(1, source=0, tag=5)
        got.append(msg)

    env.process(sender(env))
    env.process(receiver(env))
    env.run()
    (msg,) = got
    assert msg.payload == {"hello": 7}
    assert msg.source == 0 and msg.dest == 1 and msg.tag == 5 and msg.nbytes == 100


def test_recv_wildcards():
    env = Environment()
    comm = make_comm(env)
    got = []

    def sender(env):
        yield from comm.send(2, 0, "a", nbytes=10, tag=9)

    def receiver(env):
        msg = yield comm.recv(0, source=ANY, tag=ANY)
        got.append((msg.source, msg.tag, msg.payload))

    env.process(receiver(env))
    env.process(sender(env))
    env.run()
    assert got == [(2, 9, "a")]


def test_recv_filters_by_source_and_tag():
    env = Environment()
    comm = make_comm(env)
    order = []

    def senders(env):
        yield from comm.send(1, 0, "wrong tag", nbytes=10, tag=1)
        yield from comm.send(2, 0, "right", nbytes=10, tag=2)

    def receiver(env):
        msg = yield comm.recv(0, source=2, tag=2)
        order.append(msg.payload)

    env.process(senders(env))
    env.process(receiver(env))
    env.run()
    assert order == ["right"]
    assert comm.pending(0) == 1  # the unmatched message remains queued


def test_isend_is_nonblocking():
    env = Environment()
    comm = make_comm(env)
    log = []

    def sender(env):
        comm.isend(0, 1, "x", nbytes=50_000_000)  # ~18 ms on the wire
        log.append(("after isend", env.now))
        yield env.timeout(0)

    def receiver(env):
        yield comm.recv(1)
        log.append(("received", env.now))

    env.process(sender(env))
    env.process(receiver(env))
    env.run()
    assert log[0] == ("after isend", 0)
    # Ranks 0 and 1 share a node: ~9.4 ms over host-memory loopback.
    assert log[1][1] > 0.008


def test_message_time_scales_with_size():
    env = Environment()
    comm = make_comm(env)
    times = {}

    def run_one(tag, nbytes):
        def sender(env):
            yield from comm.send(0, 3, None, nbytes=nbytes, tag=tag)

        def receiver(env):
            yield comm.recv(3, tag=tag)
            times[tag] = env.now

        return sender, receiver

    s1, r1 = run_one(1, 1_000_000)
    env.process(s1(env))
    env.process(r1(env))
    env.run()
    t_small = times[1]

    env2 = Environment()
    comm2 = make_comm(env2)
    times.clear()

    def sender(env):
        yield from comm2.send(0, 3, None, nbytes=10_000_000, tag=1)

    def receiver(env):
        yield comm2.recv(3, tag=1)
        times[1] = env.now

    env2.process(sender(env2))
    env2.process(receiver(env2))
    env2.run()
    assert times[1] > 5 * t_small


def test_same_node_ranks_use_loopback():
    env = Environment()
    comm = make_comm(env, ranks=4, gpus_per_node=2)  # ranks 0,1 on node 0
    t = {}

    def pair(env, src, dst, key):
        def sender(env):
            yield from comm.send(src, dst, None, nbytes=10_000_000, tag=src)

        def receiver(env):
            yield comm.recv(dst, source=src)
            t[key] = env.now

        return sender, receiver

    s, r = pair(env, 0, 1, "intra")
    env.process(s(env))
    env.process(r(env))
    env.run()

    env2 = Environment()
    comm2 = make_comm(env2, ranks=4, gpus_per_node=2)

    def sender(env):
        yield from comm2.send(0, 2, None, nbytes=10_000_000, tag=0)

    def receiver(env):
        yield comm2.recv(2, source=0)
        t["inter"] = env.now

    env2.process(sender(env2))
    env2.process(receiver(env2))
    env2.run()
    assert t["intra"] < t["inter"]


def test_barrier_releases_all_at_once():
    env = Environment()
    comm = make_comm(env, ranks=3, gpus_per_node=1)
    release_times = {}

    def worker(env, rank, delay):
        yield env.timeout(delay)
        yield comm.barrier(rank)
        release_times[rank] = env.now

    env.process(worker(env, 0, 1))
    env.process(worker(env, 1, 5))
    env.process(worker(env, 2, 3))
    env.run()
    assert release_times == {0: 5, 1: 5, 2: 5}


def test_barrier_multiple_rounds():
    env = Environment()
    comm = make_comm(env, ranks=2, gpus_per_node=1)
    log = []

    def worker(env, rank):
        for round_no in range(3):
            yield env.timeout(rank + 1)
            yield comm.barrier(rank)
            log.append((round_no, rank, env.now))

    env.process(worker(env, 0))
    env.process(worker(env, 1))
    env.run()
    # Each round releases both ranks at the slower rank's arrival time.
    times = sorted({t for _, _, t in log})
    assert times == [2, 4, 6]


def test_alltoallv_exchanges_payloads():
    env = Environment()
    comm = make_comm(env, ranks=3, gpus_per_node=1)
    results = {}

    def worker(env, rank):
        payloads = [f"{rank}->{d}" for d in range(3)]
        got = yield from comm.alltoallv(rank, payloads, [100] * 3)
        results[rank] = got

    for r in range(3):
        env.process(worker(env, r))
    env.run()
    assert results[0] == ["0->0", "1->0", "2->0"]
    assert results[2] == ["0->2", "1->2", "2->2"]


def test_allgather():
    env = Environment()
    comm = make_comm(env, ranks=4, gpus_per_node=2)
    results = {}

    def worker(env, rank):
        got = yield from comm.allgather(rank, rank * 10, nbytes=8)
        results[rank] = got

    for r in range(4):
        env.process(worker(env, r))
    env.run()
    for r in range(4):
        assert results[r] == [0, 10, 20, 30]


def test_allreduce_numpy_sum():
    env = Environment()
    comm = make_comm(env, ranks=4, gpus_per_node=2)
    results = {}

    def worker(env, rank):
        vec = np.full(3, rank, dtype=np.float64)
        out = yield from comm.allreduce(rank, vec, nbytes=24, op=np.add)
        results[rank] = out

    for r in range(4):
        env.process(worker(env, r))
    env.run()
    for r in range(4):
        np.testing.assert_allclose(results[r], [6.0, 6.0, 6.0])


def test_bcast():
    env = Environment()
    comm = make_comm(env, ranks=3, gpus_per_node=1)
    results = {}

    def worker(env, rank):
        value = yield from comm.bcast(rank, root=1, payload="gold" if rank == 1 else None, nbytes=100)
        results[rank] = value

    for r in range(3):
        env.process(worker(env, r))
    env.run()
    assert results == {0: "gold", 1: "gold", 2: "gold"}


def test_rank_validation():
    env = Environment()
    comm = make_comm(env)
    with pytest.raises(ValueError):
        comm.isend(0, 99, None, 1)
    with pytest.raises(ValueError):
        comm.recv(99)
    with pytest.raises(ValueError):
        comm.barrier(-2)


def test_bytes_accounting_per_rank():
    env = Environment()
    comm = make_comm(env)

    def proc(env):
        yield from comm.send(1, 2, None, nbytes=640)

    env.run(until=env.process(proc(env)))
    assert comm.bytes_by_rank[1] == 640
    assert comm.bytes_by_rank[2] == 0

"""Property-style tests of the chunk scheduler and schedule replay.

The dynamic scheduler's invariants (longest-queue-first victims, the
steal threshold, ledger accuracy, exhaustion) are checked over many
randomized queue shapes, and the record/replay contract is pinned:
a recorded :class:`ScheduleTrace` replayed through a
:class:`ReplayScheduler` must reproduce the grant sequence exactly —
same workers, same chunks, same victims, same steal ledgers.
"""

import random
import threading

import pytest

from repro.core import (
    RETRY,
    Chunk,
    ChunkScheduler,
    ChunkService,
    ReplayScheduler,
    ScheduleGrant,
    ScheduleTrace,
    WorkerStats,
)


def make_chunks(n, start=0):
    return [
        Chunk(index=start + i, data=None, logical_items=1, logical_bytes=8)
        for i in range(n)
    ]


def drain(scheduler, n_workers, order=None):
    """Drive workers until every request returns None; returns grants.

    ``order`` is the request schedule: a sequence of worker ranks that
    keep requesting in round-robin rotation until all are exhausted.
    """
    ranks = list(order if order is not None else range(n_workers))
    grants = []
    done = set()
    while len(done) < len(ranks):
        for w in ranks:
            if w in done:
                continue
            a = scheduler.request(w)
            if a is None:
                done.add(w)
            else:
                grants.append((w, a))
    return grants


# -- dynamic scheduler invariants --------------------------------------------

@pytest.mark.parametrize("seed", range(10))
def test_steal_always_takes_the_longest_queue(seed):
    """Whenever an idle worker steals, the victim had (one of) the
    longest queues at that moment, and was at/above the threshold."""
    rng = random.Random(seed)
    n = rng.randint(2, 6)
    s = ChunkScheduler(n)
    next_id = 0
    for w in range(n):
        chunks = make_chunks(rng.randint(0, 8), start=next_id)
        next_id += len(chunks)
        for c in chunks:
            s.push(w, c)

    thief = rng.randrange(n)
    while s.queue_len(thief):  # make the thief idle first
        s.request(thief)
    lengths_before = [s.queue_len(w) for w in range(n)]
    a = s.request(thief)
    if a is None:
        # No steal possible: every queue was under the threshold.
        assert max(lengths_before) < ChunkScheduler.MIN_VICTIM_QUEUE
    else:
        assert a.stolen_by(thief)
        assert lengths_before[a.victim] == max(lengths_before)
        assert lengths_before[a.victim] >= ChunkScheduler.MIN_VICTIM_QUEUE


@pytest.mark.parametrize("seed", range(10))
def test_steals_ledger_accuracy_and_exhaustion_with_stealing(seed):
    """Random drains: every chunk granted exactly once, the global and
    per-worker steal counters equal the stolen assignments observed,
    and the recorded trace mirrors the grants one-for-one."""
    rng = random.Random(100 + seed)
    n = rng.randint(2, 5)
    chunks = make_chunks(rng.randint(1, 24))
    s = ChunkScheduler(n)
    s.assign(chunks, rng.choice(("round_robin", "blocks", "single")))

    order = list(range(n))
    rng.shuffle(order)
    grants = drain(s, n, order)

    granted_ids = [a.chunk.index for _, a in grants]
    assert sorted(granted_ids) == [c.index for c in chunks]
    assert s.remaining == 0

    observed_steals = [0] * n
    for w, a in grants:
        if a.stolen_by(w):
            observed_steals[w] += 1
    assert s.steals == sum(observed_steals)
    assert s.steals_by_worker == observed_steals

    # The trace is the grant log, verbatim.
    assert [(g.worker, g.chunk_id, g.was_steal, g.victim) for g in s.trace] == [
        (w, a.chunk.index, a.stolen_by(w), a.victim) for w, a in grants
    ]
    assert s.trace.total_steals == s.steals
    assert s.trace.steals_by_worker(n) == observed_steals
    assert sum(s.trace.chunk_counts(n)) == len(chunks)


def test_exhaustion_without_stealing_strands_remote_queues():
    """With stealing off, a worker drains only its own queue: an idle
    worker gets None even while peers still hold work."""
    s = ChunkScheduler(2, enable_stealing=False)
    s.assign(make_chunks(6), "single")  # everything on worker 0
    assert s.request(1) is None
    assert s.queue_len(0) == 6
    for _ in range(6):
        assert s.request(0) is not None
    assert s.request(0) is None
    assert s.steals == 0
    assert s.steals_by_worker == [0, 0]
    assert len(s.trace) == 6 and s.trace.total_steals == 0


def test_threshold_leaves_last_chunks_unstolen():
    """A victim holding fewer than MIN_VICTIM_QUEUE chunks is not
    robbed, so its final chunk is always its own."""
    s = ChunkScheduler(2)
    s.push(0, make_chunks(1)[0])
    assert s.request(1) is None  # below threshold: no steal
    a = s.request(0)
    assert a is not None and not a.stolen_by(0)


# -- record -> replay round-trip ----------------------------------------------

@pytest.mark.parametrize("seed", range(8))
def test_trace_round_trip_replays_identical_grant_order(seed):
    """record -> replay: the ReplayScheduler re-issues the exact grant
    sequence per worker (chunks, victims, steal flags) and ends with
    the same ledgers."""
    rng = random.Random(200 + seed)
    n = rng.randint(2, 5)
    chunks = make_chunks(rng.randint(2, 20))
    recorder = ChunkScheduler(n)
    recorder.assign(chunks, rng.choice(("round_robin", "blocks", "single")))
    order = list(range(n))
    rng.shuffle(order)
    drain(recorder, n, order)

    replayer = ReplayScheduler(n, recorder.trace)
    replayer.assign(chunks)
    # A different request interleaving must not change per-worker order.
    rng.shuffle(order)
    drain(replayer, n, order)

    for w in range(n):
        assert replayer.trace.for_worker(w) == recorder.trace.for_worker(w)
    assert replayer.steals == recorder.steals
    assert replayer.steals_by_worker == recorder.steals_by_worker
    assert replayer.remaining == 0


def test_trace_wire_round_trip():
    trace = ScheduleTrace()
    trace.record(0, 7, 0)
    trace.record(1, 3, 0)  # a steal from worker 0
    records = trace.to_records()
    assert records == [(0, 7, False, 0), (1, 3, True, 0)]
    assert ScheduleTrace.from_records(records) == trace
    assert ScheduleTrace.from_records(records).grants[1] == ScheduleGrant(
        worker=1, chunk_id=3, was_steal=True, victim=0
    )


def test_replay_rejects_wrong_chunk_sets():
    chunks = make_chunks(3)
    recorder = ChunkScheduler(2)
    recorder.assign(chunks)
    drain(recorder, 2)
    trace = recorder.trace

    with pytest.raises(ValueError, match="does not cover"):
        ReplayScheduler(2, trace).assign(make_chunks(4))
    with pytest.raises(ValueError, match="not in the job"):
        ReplayScheduler(2, trace).assign(make_chunks(3, start=100))
    with pytest.raises(ValueError, match="unique"):
        ReplayScheduler(2, trace).assign(make_chunks(3) + [make_chunks(1)[0]])

    bad_rank = ScheduleTrace.from_records([(5, 0, False, 5)])
    with pytest.raises(ValueError, match="outside"):
        ReplayScheduler(2, bad_rank).assign(make_chunks(1))
    bad_flag = ScheduleTrace.from_records([(0, 0, True, 0)])
    with pytest.raises(ValueError, match="inconsistent steal flag"):
        ReplayScheduler(2, bad_flag).assign(make_chunks(1))
    twice = ScheduleTrace.from_records([(0, 0, False, 0), (1, 0, True, 0)])
    with pytest.raises(ValueError, match="twice"):
        ReplayScheduler(2, twice).assign(make_chunks(1))


def test_replay_requires_assign_first():
    trace = ScheduleTrace.from_records([(0, 0, False, 0)])
    r = ReplayScheduler(1, trace)
    with pytest.raises(RuntimeError, match="before assign"):
        r.request(0)
    with pytest.raises(ValueError, match="out of range"):
        r.request(9)


def test_replay_errors_name_context_and_grant_index():
    """Satellite: a trace/backend mismatch is debuggable from the
    message alone — app/phase context plus the offending grant index."""
    bad_rank = ScheduleTrace.from_records([(0, 0, False, 0), (5, 1, False, 5)])
    with pytest.raises(ValueError, match="matmul-phase1"):
        ReplayScheduler(2, bad_rank, context="matmul-phase1").assign(
            make_chunks(2)
        )
    with pytest.raises(ValueError, match=r"grant #1 .* outside 0\.\.1"):
        ReplayScheduler(2, bad_rank, context="matmul-phase1").assign(
            make_chunks(2)
        )

    twice = ScheduleTrace.from_records(
        [(0, 0, False, 0), (1, 1, True, 0), (1, 0, True, 0)]
    )
    with pytest.raises(
        ValueError,
        match=r"replaying schedule for wo: trace grant #2 grants chunk 0 "
        r"twice \(first granted by grant #0\)",
    ):
        ReplayScheduler(2, twice, context="wo").assign(make_chunks(2))

    missing = ScheduleTrace.from_records([(0, 0, False, 0)])
    with pytest.raises(ValueError, match=r"sio.*does not cover chunk\(s\) \[1\]"):
        twice_chunks = make_chunks(2)
        ReplayScheduler(2, missing, context="sio").assign(twice_chunks)


# -- chunk service (the pull server every backend shares) ---------------------

def _drain_service(svc, n_workers):
    """Round-robin pull until every worker is told it is done."""
    grants = []
    active = set(range(n_workers))
    while active:
        for w in range(n_workers):
            if w not in active:
                continue
            a = svc.request(w)
            if a is None:
                active.discard(w)
            else:
                grants.append((w, a))
    return grants


def test_chunk_service_native_pull_covers_all_chunks_with_steals():
    chunks = make_chunks(9)
    svc = ChunkService(chunks, 3, initial_distribution="single")
    grants = _drain_service(svc, 3)
    assert sorted(a.chunk.index for _, a in grants) == list(range(9))
    assert svc.remaining == 0
    # Everything started on worker 0, so the interleaved pull steals.
    assert svc.steals > 0
    assert svc.trace.total_steals == svc.steals
    assert sum(svc.chunk_counts()) == 9
    observed = [0, 0, 0]
    for w, a in grants:
        if a.stolen_by(w):
            observed[w] += 1
    assert svc.steals_by_worker == observed


def test_chunk_service_stealing_off_strands_remote_queues():
    svc = ChunkService(
        make_chunks(4), 2, initial_distribution="single",
        enable_stealing=False,
    )
    assert svc.request(1) is None
    assert all(svc.request(0) is not None for _ in range(4))
    assert svc.steals == 0


def test_chunk_service_replay_reissues_the_trace():
    chunks = make_chunks(8)
    recorder = ChunkService(chunks, 3, initial_distribution="single")
    _drain_service(recorder, 3)
    svc = ChunkService(chunks, 3, schedule=recorder.trace, context="sio")
    assert svc.replaying
    _drain_service(svc, 3)
    assert svc.steals_by_worker == recorder.steals_by_worker
    assert svc.chunk_counts() == recorder.chunk_counts()


def test_chunk_service_concurrent_pulls_grant_each_chunk_once():
    """The local/cluster drivers answer pulls from service threads; a
    storm of concurrent requesters must still see every chunk granted
    exactly once with accurate ledgers."""
    chunks = make_chunks(60)
    svc = ChunkService(chunks, 4, initial_distribution="single")
    got = [[] for _ in range(4)]

    def _pull(worker):
        while True:
            a = svc.request(worker)
            if a is None:
                return
            got[worker].append(a)

    threads = [
        threading.Thread(target=_pull, args=(w,), daemon=True)
        for w in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10.0)
    granted = [a.chunk.index for per in got for a in per]
    assert sorted(granted) == list(range(60))
    assert svc.chunk_counts() == [len(per) for per in got]
    assert svc.steals_by_worker == [
        sum(1 for a in per if a.stolen_by(w)) for w, per in enumerate(got)
    ]


def test_chunk_service_validate_ledgers_catches_disagreement():
    chunks = make_chunks(4)
    svc = ChunkService(chunks, 2, context="sio")
    _drain_service(svc, 2)
    good = []
    for rank in range(2):
        w = WorkerStats(rank=rank)
        w.chunks_mapped = svc.chunk_counts()[rank]
        w.chunks_stolen = svc.steals_by_worker[rank]
        good.append(w)
    svc.validate_ledgers(good)  # agreeing ledgers pass

    bad_count = WorkerStats(rank=0)
    bad_count.chunks_mapped = good[0].chunks_mapped + 1
    bad_count.chunks_stolen = good[0].chunks_stolen
    with pytest.raises(RuntimeError, match=r"chunk ledgers disagree.*\[sio\]"):
        svc.validate_ledgers([bad_count])

    bad_steal = WorkerStats(rank=1)
    bad_steal.chunks_mapped = good[1].chunks_mapped
    bad_steal.chunks_stolen = good[1].chunks_stolen + 1
    with pytest.raises(RuntimeError, match="steal ledgers disagree"):
        svc.validate_ledgers([bad_steal])


def test_replay_service_distribution_matches_trace():
    """Record -> replay through the pull service: each worker's grant
    sequence splits the chunk set exactly as the trace dictates, steal
    ledger included."""
    chunks = make_chunks(8)
    recorder = ChunkScheduler(3)
    recorder.assign(chunks, "single")
    drain(recorder, 3)
    svc = ChunkService(chunks, 3, schedule=recorder.trace)
    per_worker = [[] for _ in range(3)]
    for w in range(3):
        while True:
            a = svc.request(w)
            if a is None:
                break
            per_worker[w].append(a.chunk)
    for w in range(3):
        assert [c.index for c in per_worker[w]] == [
            g.chunk_id for g in recorder.trace.for_worker(w)
        ]
    assert svc.steals_by_worker == recorder.steals_by_worker
    assert sum(len(p) for p in per_worker) == len(chunks)


# -- fault tolerance: reclaim / speculation ----------------------------------

def test_reclaim_regrants_lost_chunks_exactly_once():
    """A dead worker's un-posted grants return to the pool and are
    re-granted exactly once: the effective trace still grants every
    chunk exactly once, and ``chunks_reclaimed`` counts the loss."""
    chunks = make_chunks(8)
    sched = ChunkScheduler(2)
    sched.assign(chunks, "round_robin")
    # Worker 0 pulls twice: first grant moves to mapped on the second
    # request, second stays in-flight — both are un-posted, both lost.
    a1 = sched.request(0)
    a2 = sched.request(0)
    lost_ids = {a1.chunk.index, a2.chunk.index}
    assert sched.outstanding(0) == sorted(lost_ids)
    assert sched.can_recover(0)

    assert sched.reclaim(0) == 2
    assert sched.chunks_reclaimed == 2
    assert sched.outstanding(0) == []
    # The dead incarnation's grants are erased from the trace.
    assert all(g.worker != 0 or g.chunk_id not in lost_ids
               for g in sched.trace.grants)

    grants = drain(sched, 2)
    granted_ids = [a.chunk.index for _w, a in grants]
    # The lost chunks came back out, and re-grants were flagged retries.
    assert lost_ids <= set(granted_ids)
    assert sum(sched.retries_by_worker) >= 2
    for w in range(2):
        sched.mark_posted(w)
    effective = [g.chunk_id for g in sched.effective_trace.grants]
    assert sorted(effective) == list(range(8))


def test_reclaim_resets_dead_worker_ledgers_for_replacement():
    """After a reclaim the dead rank's ledgers are zeroed, so a fresh
    replacement incarnation's stats validate cleanly end-to-end."""
    chunks = make_chunks(6)
    svc = ChunkService(chunks, 2, initial_distribution="single")
    svc.request(0)
    svc.request(0)
    assert svc.reclaim(0) == 2
    assert svc.chunk_counts()[0] == 0
    assert svc.steals_by_worker[0] == 0
    assert svc.retries_by_worker[0] == 0

    _drain_service(svc, 2)
    stats = []
    for rank in range(2):
        w = WorkerStats(rank=rank)
        w.chunks_mapped = svc.chunk_counts()[rank]
        w.chunks_stolen = svc.steals_by_worker[rank]
        stats.append(w)
    svc.validate_ledgers(stats)
    assert sorted(g.chunk_id for g in svc.trace.grants) == list(range(6))


def test_reclaim_after_mark_posted_raises():
    chunks = make_chunks(2)
    sched = ChunkScheduler(1)
    sched.assign(chunks, "single")
    drain(sched, 1)
    sched.mark_posted(0)
    assert not sched.can_recover(0)
    with pytest.raises(RuntimeError, match="already posted"):
        sched.reclaim(0)


def test_reclaim_skips_chunks_with_live_speculative_copy():
    """A lost chunk whose speculative duplicate is still in flight on a
    survivor is covered — it must not be re-queued a third time."""
    chunks = make_chunks(3)
    sched = ChunkScheduler(2, speculate_after=0.05)
    sched.assign(chunks, "single")
    a = sched.request(0)           # worker 0 holds chunk a in flight
    sched.request(0)
    sched.request(0)
    # Backdate worker 0's in-flight grants so they are over-age.
    for cid, (chunk, t) in list(sched._outstanding[0].items()):
        sched._outstanding[0][cid] = (chunk, t - 10.0)
    dup = sched.request(1)         # worker 1 speculates a duplicate
    assert dup is not None and dup is not RETRY
    dup_id = dup.chunk.index
    # Worker 1 dies holding only the duplicate: nothing re-queues,
    # worker 0's original copy covers the chunk.
    assert sched.reclaim(1) == 0
    assert sched.chunks_reclaimed == 0
    sched.mark_posted(0)
    effective = [g.chunk_id for g in sched.effective_trace.grants]
    assert sorted(effective) == list(range(3))
    assert a.chunk.index in effective and dup_id in effective


def test_speculation_duplicates_only_aged_inflight_grants():
    """Speculation answers RETRY while candidates are under-age, grants
    the oldest over-age in-flight chunk at most twice, and the kept
    copy is the canonical (lowest-rank) completer."""
    chunks = make_chunks(2)
    sched = ChunkScheduler(3, speculate_after=30.0)
    sched.assign(chunks, "single")
    g0 = sched.request(0)
    g1 = sched.request(0)          # g0 -> mapped, g1 stays in flight
    # Under-age in-flight work elsewhere: ask-again, not done.
    assert sched.request(1) is RETRY
    # Age the in-flight grant past the threshold; the idle worker
    # duplicates it.
    chunk, t = sched._outstanding[0][g1.chunk.index]
    sched._outstanding[0][g1.chunk.index] = (chunk, t - 60.0)
    dup = sched.request(1)
    assert dup.chunk.index == g1.chunk.index
    # Max two copies: a double-granted chunk is never granted a third
    # time, and with nothing else speculable the third worker is done.
    assert sched.request(2) is None
    # Both copies finish; the lower rank's copy is the kept one, and
    # the effective trace filters the loser back to one-grant-per-chunk.
    sched.mark_posted(0)
    sched.mark_posted(1)
    assert sched.speculative_wins == 0  # original (rank 0) won
    kept = [g for g in sched.effective_trace.grants
            if g.chunk_id == g1.chunk.index]
    assert len(kept) == 1 and kept[0].worker == 0
    assert g0.chunk.index in [g.chunk_id for g in sched.effective_trace.grants]


def test_speculation_win_counts_when_duplicate_posts_first():
    """If only the duplicate's holder posts, the duplicate is the kept
    copy and counts as a speculative win."""
    chunks = make_chunks(1)
    sched = ChunkScheduler(2, speculate_after=0.01)
    sched.assign(chunks, "single")
    g = sched.request(0)
    chunk, t = sched._outstanding[0][g.chunk.index]
    sched._outstanding[0][g.chunk.index] = (chunk, t - 1.0)
    dup = sched.request(1)
    assert dup.chunk.index == g.chunk.index
    sched.mark_posted(1)           # duplicate completes; original never posts
    assert sched.speculative_wins == 1
    kept = sched.effective_trace.grants
    assert [(x.worker, x.chunk_id) for x in kept if x.chunk_id == g.chunk.index] \
        == [(1, g.chunk.index)]


def test_mapped_but_unposted_chunks_are_not_speculation_candidates():
    """A worker's next request moves its in-flight grants to
    mapped-but-unposted; those stay reclaimable but stop being
    speculation candidates (their output exists locally)."""
    chunks = make_chunks(2)
    sched = ChunkScheduler(2, speculate_after=0.0)
    sched.assign(chunks, "single")
    g0 = sched.request(0)
    g1 = sched.request(0)          # g0 -> mapped, g1 in flight
    for cid, (chunk, t) in list(sched._outstanding[0].items()):
        sched._outstanding[0][cid] = (chunk, t - 10.0)
    dup = sched.request(1)
    assert dup.chunk.index == g1.chunk.index  # never the mapped g0
    assert g0.chunk.index in sched._mapped[0]


def test_chunk_service_rejects_speculation_under_replay():
    chunks = make_chunks(4)
    rec = ChunkScheduler(2)
    rec.assign(chunks, "round_robin")
    drain(rec, 2)
    with pytest.raises(ValueError, match="replayed schedule"):
        ChunkService(chunks, 2, schedule=rec.trace, speculate_after=0.1)


def test_chunk_service_reclaim_is_atomic_under_guard():
    """guard() holds the service lock so drain-then-reclaim is atomic
    against a concurrent pull storm; the total grant set still covers
    every chunk exactly once."""
    chunks = make_chunks(40)
    svc = ChunkService(chunks, 3, initial_distribution="single")
    svc.request(0)
    svc.request(0)
    got = [[] for _ in range(3)]

    def _pull(worker):
        while True:
            a = svc.request(worker)
            if a is None:
                return
            got[worker].append(a.chunk.index)

    threads = [threading.Thread(target=_pull, args=(w,), daemon=True)
               for w in (1, 2)]
    with svc.guard():
        for t in threads:
            t.start()
        reclaimed = svc.reclaim(0)
    assert reclaimed == 2
    for t in threads:
        t.join(timeout=10.0)
    _drain_service(svc, 3)
    for w in range(3):
        svc.mark_posted(w)
    assert sorted(g.chunk_id for g in svc.trace.grants) == list(range(40))
    assert svc.chunks_reclaimed == 2

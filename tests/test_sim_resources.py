"""Unit tests for simulation resources, containers, and stores."""

import pytest

from repro.sim import Container, Environment, FilterStore, Resource, Store


# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------

def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    log = []

    def user(env, res, name, hold):
        req = res.request()
        yield req
        log.append(("acq", name, env.now))
        yield env.timeout(hold)
        res.release(req)
        log.append(("rel", name, env.now))

    env.process(user(env, res, "a", 5))
    env.process(user(env, res, "b", 5))
    env.process(user(env, res, "c", 5))
    env.run()
    # a and b acquire at t=0; c must wait until one releases at t=5.
    assert ("acq", "a", 0) in log and ("acq", "b", 0) in log
    assert ("acq", "c", 5) in log


def test_resource_fifo_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(env, res, name):
        with res.request() as req:
            yield req
            order.append(name)
            yield env.timeout(1)

    for name in "abcde":
        env.process(user(env, res, name))
    env.run()
    assert order == list("abcde")


def test_priority_resource_serves_low_priority_value_first():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def holder(env):
        with res.request() as req:
            yield req
            yield env.timeout(10)

    def user(env, name, prio, delay):
        yield env.timeout(delay)
        with res.request(priority=prio) as req:
            yield req
            order.append(name)
            yield env.timeout(1)

    env.process(holder(env))
    env.process(user(env, "low-prio", 5, 1))
    env.process(user(env, "high-prio", 0, 2))
    env.run()
    assert order == ["high-prio", "low-prio"]


def test_resource_release_via_context_manager():
    env = Environment()
    res = Resource(env, capacity=1)

    def user(env):
        with res.request() as req:
            yield req
            yield env.timeout(1)

    env.process(user(env))
    env.run()
    assert res.count == 0
    assert res.queue_len == 0


def test_resource_cancel_waiting_request():
    env = Environment()
    res = Resource(env, capacity=1)
    got_it = []

    def holder(env):
        with res.request() as req:
            yield req
            yield env.timeout(10)

    def impatient(env):
        req = res.request()
        result = yield req | env.timeout(2)
        if req not in result:
            req.cancel()
            got_it.append("gave up")

    def patient(env):
        yield env.timeout(1)
        with res.request() as req:
            yield req
            got_it.append(("acquired", env.now))

    env.process(holder(env))
    env.process(impatient(env))
    env.process(patient(env))
    env.run()
    assert "gave up" in got_it
    # patient gets it as soon as holder releases (t=10), not blocked by
    # the cancelled impatient request.
    assert ("acquired", 10) in got_it


def test_resource_count_and_queue_len():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder(env):
        with res.request() as req:
            yield req
            assert res.count == 1
            yield env.timeout(5)

    def waiter(env):
        yield env.timeout(1)
        with res.request() as req:
            yield req

    env.process(holder(env))
    env.process(waiter(env))
    env.run(until=2)
    assert res.queue_len == 1
    env.run()
    assert res.queue_len == 0


# ---------------------------------------------------------------------------
# Container
# ---------------------------------------------------------------------------

def test_container_init_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=0)
    with pytest.raises(ValueError):
        Container(env, capacity=10, init=11)


def test_container_get_blocks_until_put():
    env = Environment()
    tank = Container(env, capacity=100, init=0)
    log = []

    def consumer(env):
        yield tank.get(30)
        log.append(("got", env.now))

    def producer(env):
        yield env.timeout(7)
        yield tank.put(50)

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert log == [("got", 7)]
    assert tank.level == 20


def test_container_put_blocks_at_capacity():
    env = Environment()
    tank = Container(env, capacity=10, init=10)
    log = []

    def producer(env):
        yield tank.put(5)
        log.append(("put done", env.now))

    def consumer(env):
        yield env.timeout(3)
        yield tank.get(6)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert log == [("put done", 3)]
    assert tank.level == 9


def test_container_put_larger_than_capacity_rejected():
    env = Environment()
    tank = Container(env, capacity=10)
    with pytest.raises(ValueError):
        tank.put(11)


def test_container_negative_amounts_rejected():
    env = Environment()
    tank = Container(env, capacity=10)
    with pytest.raises(ValueError):
        tank.get(-1)
    with pytest.raises(ValueError):
        tank.put(-1)


# ---------------------------------------------------------------------------
# Store / FilterStore
# ---------------------------------------------------------------------------

def test_store_fifo_semantics():
    env = Environment()
    store = Store(env)
    got = []

    def producer(env):
        for i in range(3):
            yield store.put(i)
            yield env.timeout(1)

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == [0, 1, 2]


def test_store_get_blocks_until_item():
    env = Environment()
    store = Store(env)
    log = []

    def consumer(env):
        item = yield store.get()
        log.append((env.now, item))

    def producer(env):
        yield env.timeout(9)
        yield store.put("x")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert log == [(9, "x")]


def test_store_bounded_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def producer(env):
        yield store.put("a")
        yield store.put("b")
        log.append(("b in", env.now))

    def consumer(env):
        yield env.timeout(5)
        item = yield store.get()
        log.append(("got", item, env.now))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert ("b in", 5) in log


def test_store_try_get_nonblocking():
    env = Environment()
    store = Store(env)
    assert store.try_get() is None
    store.put("only")
    env.run()
    assert store.try_get() == "only"
    assert store.try_get() is None


def test_store_len_and_items():
    env = Environment()
    store = Store(env)
    for i in range(4):
        store.put(i)
    env.run()
    assert len(store) == 4
    assert store.items == [0, 1, 2, 3]


def test_filterstore_matches_specific_item():
    env = Environment()
    store = FilterStore(env)
    got = []

    def consumer(env):
        item = yield store.get(filter=lambda m: m["tag"] == 7)
        got.append((env.now, item["payload"]))

    def producer(env):
        yield env.timeout(1)
        yield store.put({"tag": 3, "payload": "no"})
        yield env.timeout(1)
        yield store.put({"tag": 7, "payload": "yes"})

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [(2, "yes")]
    # The non-matching item stays in the store.
    assert len(store) == 1


def test_filterstore_plain_get_takes_oldest():
    env = Environment()
    store = FilterStore(env)
    store.put("first")
    store.put("second")
    env.run()

    def consumer(env):
        item = yield store.get()
        return item

    assert env.run(until=env.process(consumer(env))) == "first"


def test_filterstore_multiple_waiters_matched_independently():
    env = Environment()
    store = FilterStore(env)
    got = {}

    def consumer(env, key):
        item = yield store.get(filter=lambda m: m[0] == key)
        got[key] = (env.now, item[1])

    def producer(env):
        yield env.timeout(1)
        yield store.put(("b", "bee"))
        yield env.timeout(1)
        yield store.put(("a", "ay"))

    env.process(consumer(env, "a"))
    env.process(consumer(env, "b"))
    env.process(producer(env))
    env.run()
    assert got == {"b": (1, "bee"), "a": (2, "ay")}

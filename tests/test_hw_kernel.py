"""Unit tests for the roofline kernel cost model."""

import pytest

from repro.hw import GT200, KernelLaunch, kernel_duration
from repro.hw.kernel import COMPUTE_EFFICIENCY, MEMORY_EFFICIENCY, occupancy


def full_grid(**kwargs):
    """A launch geometry that fully occupies GT200."""
    defaults = dict(name="k", grid_blocks=240, block_threads=256)
    defaults.update(kwargs)
    return KernelLaunch(**defaults)


def test_empty_kernel_costs_launch_overhead():
    launch = full_grid()
    assert kernel_duration(GT200, launch) == pytest.approx(
        GT200.kernel_launch_overhead
    )


def test_compute_bound_kernel_scales_with_flops():
    base = full_grid(flops=1e9)
    double = full_grid(flops=2e9)
    t1 = kernel_duration(GT200, base) - GT200.kernel_launch_overhead
    t2 = kernel_duration(GT200, double) - GT200.kernel_launch_overhead
    assert t2 == pytest.approx(2 * t1)


def test_memory_bound_kernel_scales_with_bytes():
    base = full_grid(gmem_read=1e8)
    double = full_grid(gmem_read=2e8)
    t1 = kernel_duration(GT200, base) - GT200.kernel_launch_overhead
    t2 = kernel_duration(GT200, double) - GT200.kernel_launch_overhead
    assert t2 == pytest.approx(2 * t1)


def test_roofline_takes_max_of_compute_and_memory():
    compute_only = full_grid(flops=1e10)
    memory_only = full_grid(gmem_read=1e9)
    both = full_grid(flops=1e10, gmem_read=1e9)
    t_both = kernel_duration(GT200, both)
    assert t_both == pytest.approx(
        max(kernel_duration(GT200, compute_only), kernel_duration(GT200, memory_only))
    )


def test_compute_rate_matches_efficiency():
    launch = full_grid(flops=GT200.peak_flops)  # 1 second of peak work
    t = kernel_duration(GT200, launch) - GT200.kernel_launch_overhead
    assert t == pytest.approx(1.0 / COMPUTE_EFFICIENCY)


def test_memory_rate_matches_efficiency():
    launch = full_grid(gmem_read=GT200.mem_bandwidth)
    t = kernel_duration(GT200, launch) - GT200.kernel_launch_overhead
    assert t == pytest.approx(1.0 / MEMORY_EFFICIENCY)


def test_poor_coalescing_slows_memory_kernel():
    good = full_grid(gmem_read=1e8, coalescing=1.0)
    bad = full_grid(gmem_read=1e8, coalescing=0.125)
    assert kernel_duration(GT200, bad) > 7 * kernel_duration(GT200, good)


def test_divergence_slows_compute_kernel():
    coherent = full_grid(flops=1e10, divergence=1.0)
    divergent = full_grid(flops=1e10, divergence=0.5)
    t_c = kernel_duration(GT200, coherent) - GT200.kernel_launch_overhead
    t_d = kernel_duration(GT200, divergent) - GT200.kernel_launch_overhead
    assert t_d == pytest.approx(2 * t_c)


def test_atomics_add_serialised_cost():
    none = full_grid(flops=1e6)
    with_atomics = full_grid(flops=1e6, atomics=1e6, atomic_conflict=4.0)
    extra = kernel_duration(GT200, with_atomics) - kernel_duration(GT200, none)
    assert extra == pytest.approx(1e6 * GT200.atomic_cost * 4.0)


def test_small_grid_occupancy_penalty():
    # Same total work, tiny grid: cannot hide latency => slower.
    full = full_grid(flops=1e9)
    tiny = KernelLaunch(name="k", grid_blocks=1, block_threads=32, flops=1e9)
    # The floor is one warp per SM's throughput => at most ~32x slower.
    assert kernel_duration(GT200, tiny) > 20 * kernel_duration(GT200, full)


def test_occupancy_floor_one_warp():
    launch = KernelLaunch(name="k", grid_blocks=1, block_threads=1, flops=1.0)
    assert occupancy(GT200, launch) == pytest.approx(32 / 1024)


def test_occupancy_caps_at_one():
    launch = full_grid(grid_blocks=10_000)
    assert occupancy(GT200, launch) == 1.0


def test_syncs_cost_extra_launch_overheads():
    plain = full_grid(flops=1e9)
    synced = full_grid(flops=1e9, syncs=3)
    extra = kernel_duration(GT200, synced) - kernel_duration(GT200, plain)
    assert extra == pytest.approx(3 * GT200.kernel_launch_overhead)


def test_block_size_limit_enforced():
    launch = KernelLaunch(name="k", grid_blocks=1, block_threads=1024)
    with pytest.raises(ValueError, match="exceeds"):
        kernel_duration(GT200, launch)


def test_scaled_multiplies_work():
    launch = full_grid(flops=1e9, gmem_read=1e8, atomics=10)
    scaled = launch.scaled(3.0)
    assert scaled.flops == pytest.approx(3e9)
    assert scaled.gmem_read == pytest.approx(3e8)
    assert scaled.atomics == pytest.approx(30)
    assert scaled.grid_blocks == 720


@pytest.mark.parametrize(
    "field,value",
    [
        ("flops", -1.0),
        ("coalescing", 0.0),
        ("coalescing", 1.5),
        ("atomic_conflict", 0.5),
        ("divergence", 2.0),
    ],
)
def test_launch_validation(field, value):
    kwargs = dict(name="k", grid_blocks=1, block_threads=32)
    kwargs[field] = value
    with pytest.raises(ValueError):
        KernelLaunch(**kwargs)

"""Unit tests for the combine substages and sorters."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ComparisonSorter,
    KeyValueSet,
    RadixSorter,
    SumAccumulator,
    SumCombiner,
    SumPartialReducer,
)
from repro.hw import GT200, kernel_duration
from repro.util.rng import generator


def kv(keys, values, scale=1.0):
    return KeyValueSet(
        keys=np.asarray(keys, dtype=np.uint32), values=np.asarray(values), scale=scale
    )


# ---------------------------------------------------------------------------
# SumPartialReducer / SumCombiner
# ---------------------------------------------------------------------------

def test_partial_reducer_merges_like_keys():
    pr = SumPartialReducer()
    out = pr.partial_reduce(kv([2, 1, 2, 1, 2], [1, 1, 1, 1, 1]))
    np.testing.assert_array_equal(out.keys, [1, 2])
    np.testing.assert_array_equal(out.values, [2, 3])


def test_partial_reducer_preserves_scale():
    pr = SumPartialReducer()
    out = pr.partial_reduce(kv([1, 1], [1, 1], scale=8.0))
    assert out.scale == 8.0


def test_partial_reducer_cost_nonzero():
    launches = SumPartialReducer().partial_reduce_cost(1 << 20, 1 << 10, 8)
    assert len(launches) >= 2  # sort passes + segmented reduce
    assert sum(kernel_duration(GT200, l) for l in launches) > 0


def test_combiner_equivalent_to_partial_reducer_functionally():
    data = kv([5, 3, 5, 3, 5, 9], [1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    a = SumCombiner().combine(data)
    b = SumPartialReducer().partial_reduce(data)
    np.testing.assert_array_equal(a.keys, b.keys)
    np.testing.assert_array_equal(a.values, b.values)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 30), st.integers(-50, 50)), min_size=1, max_size=200))
def test_property_combine_conserves_sums(pairs):
    keys = [k for k, _ in pairs]
    values = [v for _, v in pairs]
    out = SumCombiner().combine(kv(keys, np.asarray(values, dtype=np.int64)))
    # Total conserved; one output per distinct key; keys ascending.
    assert int(out.values.sum()) == sum(values)
    assert len(out) == len(set(keys))
    assert np.all(np.diff(out.keys.astype(np.int64)) > 0)


# ---------------------------------------------------------------------------
# SumAccumulator
# ---------------------------------------------------------------------------

def test_accumulator_validation():
    with pytest.raises(ValueError):
        SumAccumulator(0)


def test_accumulator_initial_state_is_exact_scale():
    acc = SumAccumulator(10)
    state = acc.initial_state(fresh_scale=16.0)
    assert state.scale == 1.0
    assert len(state) == 10
    np.testing.assert_array_equal(state.values, np.zeros(10))


def test_accumulator_accumulate_adds_in_place():
    acc = SumAccumulator(4, value_dtype=np.int64)
    state = acc.initial_state(1.0)
    acc.accumulate(state, kv([1, 3, 1], np.array([5, 7, 2], dtype=np.int64)))
    np.testing.assert_array_equal(state.values, [0, 7, 0, 7])


def test_accumulator_rejects_out_of_universe_keys():
    acc = SumAccumulator(4)
    state = acc.initial_state(1.0)
    with pytest.raises(ValueError):
        acc.accumulate(state, kv([7], [1.0]))


def test_accumulator_empty_fresh_noop():
    acc = SumAccumulator(4)
    state = acc.initial_state(1.0)
    out = acc.accumulate(state, KeyValueSet.empty())
    assert out is state


def test_accumulator_vector_values():
    acc = SumAccumulator(3, value_width=2)
    state = acc.initial_state(1.0)
    fresh = KeyValueSet(
        keys=np.array([0, 2], dtype=np.uint32),
        values=np.array([[1.0, 2.0], [3.0, 4.0]]),
    )
    acc.accumulate(state, fresh)
    np.testing.assert_array_equal(state.values[0], [1.0, 2.0])
    np.testing.assert_array_equal(state.values[2], [3.0, 4.0])


def test_accumulator_atomic_vs_pool_costs():
    atomic = SumAccumulator(1000, use_atomics=True)
    pools = SumAccumulator(1000, use_atomics=False)
    t_atomic = sum(
        kernel_duration(GT200, l) for l in atomic.accumulate_cost(1 << 20, 1000, 8)
    )
    t_pools = sum(
        kernel_duration(GT200, l) for l in pools.accumulate_cost(1 << 20, 1000, 8)
    )
    assert t_atomic > 0 and t_pools > 0
    # The atomic-free path pays an extra pool-fold kernel.
    assert len(pools.accumulate_cost(1 << 20, 1000, 8)) == 2


def test_accumulator_small_universe_conflicts_cost_more():
    few = SumAccumulator(4, use_atomics=True)
    many = SumAccumulator(1 << 16, use_atomics=True)
    t_few = sum(kernel_duration(GT200, l) for l in few.accumulate_cost(1 << 20, 4, 8))
    t_many = sum(
        kernel_duration(GT200, l) for l in many.accumulate_cost(1 << 20, 1 << 16, 8)
    )
    assert t_few > t_many


def test_accumulator_state_bytes():
    assert SumAccumulator(100).state_bytes(pair_bytes=12) == 1200


# ---------------------------------------------------------------------------
# Sorters
# ---------------------------------------------------------------------------

def test_radix_sorter_sorts_kvset():
    s = RadixSorter()
    out = s.sort(kv([3, 1, 2], [30, 10, 20]))
    np.testing.assert_array_equal(out.keys, [1, 2, 3])
    np.testing.assert_array_equal(out.values, [10, 20, 30])


def test_radix_sorter_pinned_bits_cheaper():
    wide = RadixSorter()  # 32-bit default pricing
    narrow = RadixSorter(key_bits=16)
    t_wide = sum(kernel_duration(GT200, l) for l in wide.sort_cost(1 << 20, 32, 8))
    t_narrow = sum(kernel_duration(GT200, l) for l in narrow.sort_cost(1 << 20, 32, 8))
    assert t_narrow == pytest.approx(t_wide / 2, rel=0.01)


def test_radix_sorter_validation():
    with pytest.raises(ValueError):
        RadixSorter(key_bits=0)
    with pytest.raises(ValueError):
        RadixSorter(key_bits=65)


def test_comparison_sorter_matches_radix():
    keys = generator(0).integers(0, 1000, 500).astype(np.uint32)
    values = np.arange(500)
    a = RadixSorter().sort(kv(keys, values))
    b = ComparisonSorter().sort(kv(keys, values))
    np.testing.assert_array_equal(a.keys, b.keys)
    np.testing.assert_array_equal(a.values, b.values)  # both stable


def test_comparison_sorter_cost_nlogn():
    s = ComparisonSorter()
    t_small = sum(kernel_duration(GT200, l) for l in s.sort_cost(1 << 16, 32, 8))
    t_big = sum(kernel_duration(GT200, l) for l in s.sort_cost(1 << 20, 32, 8))
    # 16x data with log factor 20/16 => ~20x work; launch overheads on
    # the small case pull the observed ratio down a little.
    assert t_big > 10 * t_small

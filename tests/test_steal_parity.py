"""Steal-aware parity: load-balanced runs bit-validated on all backends.

The strict parity tier (`test_exec_parity.py`) pins stealing *off*,
because the sim's dynamic scheduler re-routes chunks based on modeled
timing that the real backends do not experience.  This tier closes
that gap with record/replay: every app runs on the sim with stealing
**enabled** (from a deliberately imbalanced ``single`` placement, so
the scheduler must actually balance the load), the recorded
:class:`~repro.core.scheduler.ScheduleTrace` is replayed on the
serial, local, and cluster backends, and the replayed runs must be
**bit-identical** to the sim — outputs, per-worker chunk counts, and
per-worker ``steals`` ledgers alike.

The tier is marked ``slow``: the default `pytest -m "not slow"` run
skips it, and CI executes it in its own `steal-parity` job.
"""

import numpy as np
import pytest

from repro.apps.kmeans import kmc_dataset, kmc_job, kmc_validate
from repro.apps.linear_regression import lr_dataset, lr_job, lr_validate
from repro.apps.matmul import (
    _phase2_chunks,
    mm_dataset,
    mm_phase1_job,
    mm_phase2_job,
)
from repro.apps.sparse_int_occurrence import sio_dataset, sio_job, sio_validate
from repro.apps.word_occurrence import wo_dataset, wo_job, wo_validate
from repro.core import ScheduleTrace, make_executor

pytestmark = pytest.mark.slow

N_WORKERS = 4

REPLAY_BACKENDS = ("serial", "local", "cluster")


def _record_sim(job, dataset=None, chunks=None):
    """Run the sim load-balanced (stealing on, all chunks on rank 0)."""
    result = make_executor(
        "sim", N_WORKERS, initial_distribution="single"
    ).run(job, dataset=dataset, chunks=chunks)
    trace = result.schedule
    assert isinstance(trace, ScheduleTrace)
    assert trace.total_steals > 0, "imbalanced placement must force steals"
    # The trace's ledgers ARE the run's ledgers.
    assert trace.steals_by_worker(N_WORKERS) == result.stats.steals_by_worker
    assert trace.chunk_counts(N_WORKERS) == [
        w.chunks_mapped for w in result.stats.workers
    ]
    return result


def _assert_replay_matches(ref, got, tag):
    """Bit-identical outputs + matching chunk/steal ledgers."""
    assert len(ref.outputs) == len(got.outputs), tag
    for rank, (a, b) in enumerate(zip(ref.outputs, got.outputs)):
        where = f"{tag} rank {rank}"
        assert (a is None) == (b is None), where
        if a is None:
            continue
        assert a.keys.dtype == b.keys.dtype, where
        assert np.array_equal(a.keys, b.keys), where
        assert a.values.dtype == b.values.dtype, where
        assert a.values.tobytes() == b.values.tobytes(), where
        assert a.scale == b.scale, where
    assert got.stats.steals_by_worker == ref.stats.steals_by_worker, tag
    assert [w.chunks_mapped for w in got.stats.workers] == [
        w.chunks_mapped for w in ref.stats.workers
    ], tag


def _replay_everywhere(job, ref, dataset=None, chunks=None):
    trace = ref.schedule
    for backend in REPLAY_BACKENDS:
        got = make_executor(backend, N_WORKERS).run(
            job, dataset=dataset, chunks=chunks, schedule=trace
        )
        _assert_replay_matches(ref, got, f"{job.name}/steal-replay/{backend}")
        assert got.schedule is trace  # the result names the schedule it ran
    return trace


def test_sim_replay_reproduces_recorded_run_exactly():
    """Replaying a trace on the sim itself is a perfect reproduction:
    same outputs, same ledgers, same modeled wall-clock."""
    ds = sio_dataset(48_000, chunk_elements=4_000, key_space=1 << 14, seed=41)
    job = sio_job(key_space=1 << 14)
    ref = _record_sim(job, dataset=ds)
    again = make_executor(
        "sim", N_WORKERS, initial_distribution="single"
    ).run(job, dataset=ds, schedule=ref.schedule)
    _assert_replay_matches(ref, again, "sio/sim-replay")
    assert again.elapsed == ref.elapsed
    assert again.schedule == ref.schedule


def test_sio_steal_parity():
    ds = sio_dataset(90_000, chunk_elements=9_000, key_space=1 << 15, seed=43)
    job = sio_job(key_space=1 << 15)
    ref = _record_sim(job, dataset=ds)
    _replay_everywhere(job, ref, dataset=ds)
    sio_validate(ref, ds)


def test_wo_steal_parity():
    ds = wo_dataset(1 << 17, chunk_chars=12_000, n_words=1_500, seed=47)
    job = wo_job(N_WORKERS, n_words=1_500)
    ref = _record_sim(job, dataset=ds)
    _replay_everywhere(job, ref, dataset=ds)
    wo_validate(ref, ds)


def test_kmc_steal_parity():
    ds = kmc_dataset(24_000, n_centers=12, dims=3, chunk_points=2_400, seed=53)
    job = kmc_job(ds)
    ref = _record_sim(job, dataset=ds)
    _replay_everywhere(job, ref, dataset=ds)
    kmc_validate(ref, ds)


def test_lr_steal_parity():
    ds = lr_dataset(36_000, chunk_points=3_600, seed=59)
    job = lr_job()
    ref = _record_sim(job, dataset=ds)
    _replay_everywhere(job, ref, dataset=ds)
    lr_validate(ref, ds)


def test_mm_steal_parity_both_phases():
    """MM's two jobs each get their own recorded trace; both replay."""
    ds = mm_dataset(384, tile=96, kspan=2, seed=61)
    job1 = mm_phase1_job(ds)
    job2 = mm_phase2_job(ds)

    p1_ref = _record_sim(job1, dataset=ds)
    _replay_everywhere(job1, p1_ref, dataset=ds)

    chunks = _phase2_chunks(ds, p1_ref)
    p2_ref = _record_sim(job2, chunks=chunks)
    _replay_everywhere(job2, p2_ref, chunks=chunks)

    # The two-phase runner takes a *pair* of traces; handing it one
    # bare trace must fail at the call site, not deep inside replay.
    from repro.apps.matmul import run_matmul

    with pytest.raises(TypeError, match="phase1_trace, phase2_trace"):
        run_matmul(N_WORKERS, ds, backend="serial", schedule=p1_ref.schedule)


def test_replayed_trace_survives_the_wire_as_records():
    """The ASSIGN frame ships plain records; a trace that round-trips
    through them replays identically on the cluster backend."""
    ds = sio_dataset(30_000, chunk_elements=3_000, key_space=1 << 12, seed=67)
    job = sio_job(key_space=1 << 12)
    ref = _record_sim(job, dataset=ds)
    rebuilt = ScheduleTrace.from_records(ref.schedule.to_records())
    got = make_executor("cluster", N_WORKERS).run(
        job, dataset=ds, schedule=rebuilt
    )
    _assert_replay_matches(ref, got, "sio/records-round-trip")

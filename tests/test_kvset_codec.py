"""The binary KVSet codec, tested in isolation.

Every exchange hot path (shared-memory local shuffle, streamed fabric
frames) rides ``KeyValueSet.to_buffers``/``from_buffers`` and the
batch-level ``pack_parts``/``unpack_parts``, so the codec must be
bit-exact across dtypes, shapes, and scales, zero-copy on decode, and
loud about malformed bytes.
"""

import numpy as np
import pytest

from repro.core.kvset import (
    CodecError,
    KeyValueSet,
    pack_parts,
    unpack_parts,
)
from repro.exec.dataflow import merge_incoming, reduce_worker


def _round_trip(kv: KeyValueSet) -> KeyValueSet:
    header, buffers = kv.to_buffers()
    return KeyValueSet.from_buffers(header, buffers)


def _assert_bit_identical(a: KeyValueSet, b: KeyValueSet) -> None:
    assert a.keys.dtype == b.keys.dtype
    assert a.values.dtype == b.values.dtype
    assert a.values.shape == b.values.shape
    assert a.keys.tobytes() == b.keys.tobytes()
    assert a.values.tobytes() == b.values.tobytes()
    assert a.scale == b.scale


def test_round_trip_default_dtypes():
    kv = KeyValueSet(
        keys=np.arange(1000, dtype=np.uint32),
        values=np.linspace(-1.0, 1.0, 1000),
        scale=16.0,
    )
    _assert_bit_identical(kv, _round_trip(kv))


def test_round_trip_empty_kvset():
    """An empty set keeps its dtypes and width through the codec."""
    kv = KeyValueSet.empty(
        key_dtype=np.int64, value_dtype=np.float32, value_width=3, scale=2.0
    )
    got = _round_trip(kv)
    _assert_bit_identical(kv, got)
    assert len(got) == 0
    assert got.value_width == 3


def test_round_trip_2d_fixed_width_values():
    kv = KeyValueSet(
        keys=np.arange(7, dtype=np.uint32),
        values=np.arange(7 * 5, dtype=np.float64).reshape(7, 5),
    )
    got = _round_trip(kv)
    _assert_bit_identical(kv, got)
    assert got.value_width == 5


@pytest.mark.parametrize(
    "key_dtype,value_dtype",
    [(np.int64, np.int16), (np.uint8, np.float32), (np.uint64, np.int32)],
)
def test_round_trip_non_default_dtypes(key_dtype, value_dtype):
    rng = np.random.default_rng(7)
    kv = KeyValueSet(
        keys=rng.integers(0, 100, 64).astype(key_dtype),
        values=rng.integers(0, 100, 64).astype(value_dtype),
    )
    _assert_bit_identical(kv, _round_trip(kv))


def test_round_trip_non_contiguous_input():
    """Strided views are made contiguous at encode, not corrupted."""
    keys = np.arange(64, dtype=np.uint32)[::2]
    values = np.arange(64, dtype=np.float64)[::2]
    kv = KeyValueSet(keys=keys, values=values)
    got = _round_trip(kv)
    assert np.array_equal(got.keys, keys)
    assert got.values.tobytes() == np.ascontiguousarray(values).tobytes()


def test_decode_is_zero_copy():
    kv = KeyValueSet(
        keys=np.arange(16, dtype=np.uint32), values=np.ones(16)
    )
    manifest, chunks, nbytes = pack_parts([kv])
    data = b"".join(bytes(c) for c in chunks)
    assert len(data) == nbytes
    (got,) = unpack_parts(manifest, data)
    # Views into the caller's buffer, not fresh allocations.
    assert not got.keys.flags.owndata
    assert not got.values.flags.owndata
    _assert_bit_identical(kv, got)


def test_pack_parts_preserves_order_and_heterogeneous_layouts():
    parts = [
        KeyValueSet(keys=np.arange(5, dtype=np.uint32), values=np.arange(5.0)),
        KeyValueSet.empty(value_width=2),
        KeyValueSet(
            keys=np.arange(3, dtype=np.int64),
            values=np.arange(6, dtype=np.float32).reshape(3, 2),
            scale=4.0,
        ),
    ]
    manifest, chunks, nbytes = pack_parts(parts)
    got = unpack_parts(manifest, b"".join(bytes(c) for c in chunks))
    assert len(got) == 3
    for original, decoded in zip(parts, got):
        _assert_bit_identical(original, decoded)


def test_mixed_scale_concat_rejected_through_exchange_path():
    """Scales survive the codec, so the concat guard still fires after
    a batch has been through encode/decode — the exchange cannot
    silently merge differently-scaled samples."""
    parts = [
        KeyValueSet(keys=np.arange(4, dtype=np.uint32), values=np.ones(4),
                    scale=1.0),
        KeyValueSet(keys=np.arange(4, dtype=np.uint32), values=np.ones(4),
                    scale=2.0),
    ]
    manifest, chunks, _ = pack_parts(parts)
    decoded = unpack_parts(manifest, b"".join(bytes(c) for c in chunks))
    assert [p.scale for p in decoded] == [1.0, 2.0]
    with pytest.raises(ValueError, match="mixed scales"):
        KeyValueSet.concat(decoded)
    # ...and through the real reduce path a worker runs after exchange.
    from repro.apps.sparse_int_occurrence import sio_job

    incoming = merge_incoming([(0, [decoded[0]]), (1, [decoded[1]])])
    with pytest.raises(ValueError, match="mixed scales"):
        reduce_worker(sio_job(key_space=16), incoming)


def test_header_corruption_is_detected():
    kv = KeyValueSet(keys=np.arange(4, dtype=np.uint32), values=np.ones(4))
    header, buffers = kv.to_buffers()
    with pytest.raises(CodecError, match="magic"):
        KeyValueSet.from_buffers(b"XX" + header[2:], buffers)
    with pytest.raises(CodecError, match="truncated"):
        KeyValueSet.from_buffers(header[:5], buffers)
    bad_version = header[:2] + bytes([99]) + header[3:]
    with pytest.raises(CodecError, match="v99"):
        KeyValueSet.from_buffers(bad_version, buffers)


def test_buffer_length_mismatch_is_detected():
    kv = KeyValueSet(keys=np.arange(4, dtype=np.uint32), values=np.ones(4))
    header, buffers = kv.to_buffers()
    with pytest.raises(CodecError, match="key buffer"):
        KeyValueSet.from_buffers(header, [buffers[0][:-1], buffers[1]])
    with pytest.raises(CodecError, match="value buffer"):
        KeyValueSet.from_buffers(header, [buffers[0], buffers[1][:-8]])


def test_manifest_corruption_is_detected():
    kv = KeyValueSet(keys=np.arange(4, dtype=np.uint32), values=np.ones(4))
    manifest, chunks, _ = pack_parts([kv])
    data = b"".join(bytes(c) for c in chunks)
    with pytest.raises(CodecError, match="magic"):
        unpack_parts(b"XXXX" + manifest[4:], data)
    with pytest.raises(CodecError, match="promises more"):
        unpack_parts(manifest, data[:-4])
    with pytest.raises(CodecError, match="trailing"):
        unpack_parts(manifest + b"\x00\x00", data)

"""Tests for the contention-aware network fabric."""

import pytest

from repro.hw.specs import OPTERON_2216_2P, QDR_INFINIBAND
from repro.net import Fabric, StarTopology
from repro.sim import Environment


def make_fabric(env, n_nodes=4):
    topo = StarTopology(n_nodes, QDR_INFINIBAND)
    return Fabric(env, topo, OPTERON_2216_2P)


def test_duration_formula_internode():
    env = Environment()
    fab = make_fabric(env)
    expected = QDR_INFINIBAND.latency + 1e6 / QDR_INFINIBAND.bandwidth
    assert fab.duration(0, 1, 1_000_000) == pytest.approx(expected)


def test_duration_loopback_uses_host_memory():
    env = Environment()
    fab = make_fabric(env)
    expected = fab.loopback_latency + 1e6 / fab.loopback_bandwidth
    assert fab.duration(2, 2, 1_000_000) == pytest.approx(expected)


def test_loopback_faster_than_wire():
    env = Environment()
    fab = make_fabric(env)
    assert fab.duration(0, 0, 10_000_000) < fab.duration(0, 1, 10_000_000)


def test_send_advances_clock():
    env = Environment()
    fab = make_fabric(env)

    def proc(env):
        elapsed = yield from fab.send(0, 1, 5_000_000)
        return elapsed

    elapsed = env.run(until=env.process(proc(env)))
    assert env.now == pytest.approx(fab.duration(0, 1, 5_000_000))
    assert elapsed == pytest.approx(env.now)


def test_same_tx_link_contends():
    env = Environment()
    fab = make_fabric(env)

    def send(env, dst):
        yield from fab.send(0, dst, 28_000_000)

    env.process(send(env, 1))
    env.process(send(env, 2))
    env.run()
    # Both leave node 0's NIC: must serialise.
    assert env.now == pytest.approx(2 * fab.duration(0, 1, 28_000_000), rel=1e-3)


def test_disjoint_pairs_proceed_in_parallel():
    env = Environment()
    fab = make_fabric(env)

    def send(env, src, dst):
        yield from fab.send(src, dst, 28_000_000)

    env.process(send(env, 0, 1))
    env.process(send(env, 2, 3))
    env.run()
    assert env.now == pytest.approx(fab.duration(0, 1, 28_000_000), rel=1e-3)


def test_rx_side_contends_too():
    env = Environment()
    fab = make_fabric(env)

    def send(env, src):
        yield from fab.send(src, 3, 28_000_000)

    env.process(send(env, 0))
    env.process(send(env, 1))
    env.run()
    # Both must traverse switch->3.
    assert env.now == pytest.approx(2 * fab.duration(0, 3, 28_000_000), rel=1e-3)


def test_loopback_does_not_use_nic():
    env = Environment()
    fab = make_fabric(env)

    def wire(env):
        yield from fab.send(0, 1, 28_000_000)

    def loop(env):
        elapsed = yield from fab.send(0, 0, 1_000_000)
        return elapsed

    env.process(wire(env))
    p = env.process(loop(env))
    env.run()
    # Loopback completed unaffected by the busy NIC.
    assert p.value == pytest.approx(fab.duration(0, 0, 1_000_000))


def test_fabric_counters():
    env = Environment()
    fab = make_fabric(env)

    def proc(env):
        yield from fab.send(0, 1, 1000)
        yield from fab.send(1, 0, 500)

    env.run(until=env.process(proc(env)))
    assert fab.bytes_sent == 1500
    assert fab.messages_sent == 2


def test_negative_size_rejected():
    env = Environment()
    fab = make_fabric(env)
    with pytest.raises(ValueError):
        list(fab.send(0, 1, -5))

"""Tests for network topologies."""

import pytest

from repro.hw.specs import QDR_INFINIBAND
from repro.net import FatTreeTopology, StarTopology


def test_star_route_goes_through_switch():
    topo = StarTopology(4, QDR_INFINIBAND)
    route = topo.route(0, 3)
    assert route == [(0, StarTopology.SWITCH), (StarTopology.SWITCH, 3)]


def test_star_self_route_is_empty():
    topo = StarTopology(4, QDR_INFINIBAND)
    assert topo.route(2, 2) == []
    assert topo.path_bandwidth(2, 2) == float("inf")


def test_star_path_latency_sums_half_latencies():
    topo = StarTopology(4, QDR_INFINIBAND)
    assert topo.path_latency(0, 1) == pytest.approx(QDR_INFINIBAND.latency)


def test_star_path_bandwidth_is_nic_bandwidth():
    topo = StarTopology(8, QDR_INFINIBAND)
    assert topo.path_bandwidth(0, 7) == QDR_INFINIBAND.bandwidth


def test_star_single_node_valid():
    topo = StarTopology(1, QDR_INFINIBAND)
    assert topo.route(0, 0) == []


def test_star_rejects_zero_nodes():
    with pytest.raises(ValueError):
        StarTopology(0, QDR_INFINIBAND)


def test_route_cache_is_consistent():
    topo = StarTopology(4, QDR_INFINIBAND)
    assert topo.route(1, 2) is topo.route(1, 2)


def test_fat_tree_same_leaf_stays_local():
    topo = FatTreeTopology(16, QDR_INFINIBAND, radix=8)
    route = topo.route(0, 7)  # both under leaf0
    assert route == [(0, "leaf0"), ("leaf0", 7)]


def test_fat_tree_cross_leaf_goes_through_core():
    topo = FatTreeTopology(16, QDR_INFINIBAND, radix=8)
    route = topo.route(0, 15)
    assert ("leaf0", "core") in route or ("core", "leaf1") in route


def test_fat_tree_full_bisection_keeps_nic_bottleneck():
    topo = FatTreeTopology(16, QDR_INFINIBAND, radix=8, oversubscription=1.0)
    assert topo.path_bandwidth(0, 15) == QDR_INFINIBAND.bandwidth


def test_fat_tree_oversubscription_reduces_uplink():
    topo = FatTreeTopology(16, QDR_INFINIBAND, radix=8, oversubscription=16.0)
    # Uplink bw = nic * 8 / 16 = nic / 2 => becomes the bottleneck.
    assert topo.path_bandwidth(0, 15) == pytest.approx(QDR_INFINIBAND.bandwidth / 2)


def test_fat_tree_single_leaf_has_no_core():
    topo = FatTreeTopology(8, QDR_INFINIBAND, radix=8)
    assert "core" not in topo.graph

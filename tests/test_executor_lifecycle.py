"""The reusable executor lifecycle, on all four backends.

The job service leases executors from a warm pool, so the lifecycle
contract must hold everywhere: ``close()`` is idempotent, a closed
executor refuses to run with a clear error, ``reset()`` returns a used
instance to a runnable state, and the context-manager form closes on
exit.  These are pure lifecycle tests — output parity for reused
instances lives in test_service.py / test_job_service.py.
"""

import pytest

from repro.apps import sio_dataset, sio_job
from repro.core.executor import make_executor

BACKENDS = ("sim", "serial", "local", "cluster")

DATASET = sio_dataset(n_elements=400, chunk_elements=100, key_space=64, seed=5)
JOB = sio_job(DATASET.key_space)


@pytest.mark.parametrize("backend", BACKENDS)
def test_close_is_idempotent(backend):
    ex = make_executor(backend, 2)
    assert not ex.closed
    ex.close()
    assert ex.closed
    ex.close()  # second close must be a no-op, not an error
    assert ex.closed


@pytest.mark.parametrize("backend", BACKENDS)
def test_run_after_close_raises(backend):
    ex = make_executor(backend, 2)
    ex.close()
    with pytest.raises(RuntimeError, match="closed"):
        ex.run(JOB, DATASET)


@pytest.mark.parametrize("backend", BACKENDS)
def test_context_manager_closes(backend):
    with make_executor(backend, 2) as ex:
        assert not ex.closed
    assert ex.closed


@pytest.mark.parametrize("backend", ("sim", "serial"))
def test_reset_enables_rerun(backend):
    ex = make_executor(backend, 2)
    first = ex.run(JOB, DATASET)
    ex.job_id = "lease-one"
    ex.reset()
    assert ex.job_id is None  # reset clears the previous lease's tag
    second = ex.run(JOB, DATASET)
    for a, b in zip(first.outputs, second.outputs):
        assert a.values.tobytes() == b.values.tobytes()
    ex.close()


def test_make_executor_passthrough_returns_prebuilt():
    ex = make_executor("serial", 2)
    assert make_executor("serial", 2, executor=ex) is ex
    ex.close()


def test_make_executor_passthrough_validates_shape():
    ex = make_executor("serial", 2)
    with pytest.raises(ValueError, match="pre-built executor"):
        make_executor("serial", 3, executor=ex)
    with pytest.raises(ValueError, match="pre-built executor"):
        make_executor("sim", 2, executor=ex)
    with pytest.raises(ValueError, match="conflicting kwargs"):
        make_executor("serial", 2, executor=ex, obs=None)
    ex.close()

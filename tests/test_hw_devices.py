"""Tests for the GPU/PCIe/CPU device models on the simulation engine."""

import pytest

from repro.hw import GT200, KernelLaunch, Node, OutOfDeviceMemory, build_nodes
from repro.hw.pcie import D2H, H2D, PCIeLink
from repro.hw.specs import ACCELERATOR, ACCELERATOR_NODE, PCIE_GEN1_X16
from repro.sim import Environment


def make_node(env):
    return Node(env, ACCELERATOR_NODE, index=0)


# ---------------------------------------------------------------------------
# PCIe
# ---------------------------------------------------------------------------

def test_pcie_duration_formula():
    env = Environment()
    link = PCIeLink(env, PCIE_GEN1_X16)
    expected = PCIE_GEN1_X16.latency + 1e6 / PCIE_GEN1_X16.bandwidth_h2d
    assert link.duration(1_000_000, H2D) == pytest.approx(expected)


def test_pcie_transfer_advances_clock():
    env = Environment()
    link = PCIeLink(env, PCIE_GEN1_X16)

    def proc(env):
        elapsed = yield from link.transfer(3_000_000, H2D)
        return elapsed

    elapsed = env.run(until=env.process(proc(env)))
    assert env.now == pytest.approx(link.duration(3_000_000, H2D))
    assert elapsed == pytest.approx(env.now)


def test_pcie_directions_are_independent():
    env = Environment()
    link = PCIeLink(env, PCIE_GEN1_X16)

    def up(env):
        yield from link.transfer(30_000_000, H2D)

    def down(env):
        yield from link.transfer(30_000_000, D2H)

    env.process(up(env))
    env.process(down(env))
    env.run()
    # Full duplex: total time is the max of the two, not the sum.
    assert env.now == pytest.approx(link.duration(30_000_000, D2H))


def test_pcie_same_direction_serialises():
    env = Environment()
    link = PCIeLink(env, PCIE_GEN1_X16)

    def copy(env):
        yield from link.transfer(30_000_000, H2D)

    env.process(copy(env))
    env.process(copy(env))
    env.run()
    assert env.now == pytest.approx(2 * link.duration(30_000_000, H2D))


def test_pcie_tracks_bytes_moved():
    env = Environment()
    link = PCIeLink(env, PCIE_GEN1_X16)

    def proc(env):
        yield from link.transfer(1000, H2D)
        yield from link.transfer(500, D2H)

    env.run(until=env.process(proc(env)))
    assert link.bytes_moved == {H2D: 1000, D2H: 500}


def test_pcie_rejects_bad_arguments():
    env = Environment()
    link = PCIeLink(env, PCIE_GEN1_X16)
    with pytest.raises(ValueError):
        list(link.transfer(-1, H2D))
    with pytest.raises(ValueError):
        list(link.transfer(10, "sideways"))


# ---------------------------------------------------------------------------
# GPU
# ---------------------------------------------------------------------------

def test_gpu_kernel_charges_simulated_time():
    env = Environment()
    node = make_node(env)
    gpu = node.gpus[0]
    launch = KernelLaunch(name="k", grid_blocks=240, block_threads=256, flops=1e9)

    def proc(env):
        yield from gpu.run_kernel(launch)

    env.run(until=env.process(proc(env)))
    assert env.now == pytest.approx(gpu.kernel_time(launch))
    assert gpu.meter.get("kernel") == pytest.approx(env.now)
    assert gpu.kernels_launched == 1


def test_gpu_kernels_serialise_on_compute_engine():
    env = Environment()
    gpu = make_node(env).gpus[0]
    launch = KernelLaunch(name="k", grid_blocks=240, block_threads=256, flops=1e9)

    def proc(env):
        yield from gpu.run_kernel(launch)

    env.process(proc(env))
    env.process(proc(env))
    env.run()
    assert env.now == pytest.approx(2 * gpu.kernel_time(launch))


def test_gpu_copy_overlaps_kernel():
    env = Environment()
    gpu = make_node(env).gpus[0]
    launch = KernelLaunch(name="k", grid_blocks=240, block_threads=256, flops=50e9)

    def kernel_proc(env):
        yield from gpu.run_kernel(launch)

    def copy_proc(env):
        yield from gpu.copy_h2d(10_000_000)

    env.process(kernel_proc(env))
    env.process(copy_proc(env))
    env.run()
    t_kernel = gpu.kernel_time(launch)
    t_copy = gpu.link.duration(10_000_000, H2D)
    # Overlap: total = max, not sum.
    assert env.now == pytest.approx(max(t_kernel, t_copy))


def test_sibling_gpus_contend_for_pcie():
    env = Environment()
    node = make_node(env)
    g0, g1, g2 = node.gpus[0], node.gpus[1], node.gpus[2]
    assert g0.link is g1.link      # paired on one cable
    assert g0.link is not g2.link  # second cable

    def copy(gpu):
        def proc(env):
            yield from gpu.copy_h2d(30_000_000)
        return proc

    env.process(copy(g0)(env))
    env.process(copy(g1)(env))
    env.process(copy(g2)(env))
    env.run()
    # g0+g1 serialise; g2 rides its own link concurrently.
    assert env.now == pytest.approx(2 * g0.link.duration(30_000_000, H2D))


def test_gpu_memory_budget_enforced():
    env = Environment()
    gpu = make_node(env).gpus[0]
    gpu.alloc(GT200.mem_capacity // 2)
    with pytest.raises(OutOfDeviceMemory):
        gpu.alloc(GT200.mem_capacity)


def test_gpu_alloc_free_roundtrip():
    env = Environment()
    gpu = make_node(env).gpus[0]
    a = gpu.alloc(1024, tag="x")
    assert not gpu.fits(GT200.mem_capacity)
    gpu.free(a)
    assert gpu.fits(GT200.mem_capacity)


# ---------------------------------------------------------------------------
# CPU
# ---------------------------------------------------------------------------

def test_cpu_cores_limit_parallelism():
    env = Environment()
    node = make_node(env)

    def task(env):
        yield from node.cpu.run(1.0)

    for _ in range(8):  # 8 tasks on 4 cores
        env.process(task(env))
    env.run()
    assert env.now == pytest.approx(2.0)


def test_cpu_flops_pricing():
    env = Environment()
    cpu = make_node(env).cpu
    flops = cpu.spec.clock_hz * cpu.spec.flops_per_core_cycle  # 1 core-second
    assert cpu.flops_time(flops) == pytest.approx(1.0)


def test_cpu_bytes_pricing():
    env = Environment()
    cpu = make_node(env).cpu
    assert cpu.bytes_time(cpu.spec.byte_throughput_per_core) == pytest.approx(1.0)


def test_cpu_meter_accumulates():
    env = Environment()
    cpu = make_node(env).cpu

    def proc(env):
        yield from cpu.run(0.5, tag="bin")
        yield from cpu.run(0.25, tag="bin")

    env.run(until=env.process(proc(env)))
    assert cpu.meter.get("bin") == pytest.approx(0.75)


# ---------------------------------------------------------------------------
# Node assembly
# ---------------------------------------------------------------------------

def test_build_nodes_count_validation():
    env = Environment()
    with pytest.raises(ValueError):
        build_nodes(env, ACCELERATOR, 0)
    with pytest.raises(ValueError):
        build_nodes(env, ACCELERATOR, 33)


def test_build_nodes_unique_names():
    env = Environment()
    nodes = build_nodes(env, ACCELERATOR, 3)
    names = {g.name for n in nodes for g in n.gpus}
    assert len(names) == 12

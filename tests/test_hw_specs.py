"""Unit tests for hardware specs and the Accelerator preset."""

import pytest

from repro.hw import (
    ACCELERATOR,
    ACCELERATOR_NODE,
    GT200,
    OPTERON_2216_2P,
    ClusterSpec,
    GPUSpec,
)
from repro.util.units import GIB


def test_gt200_core_count():
    assert GT200.core_count == 240  # 30 SMs x 8 SPs


def test_gt200_peak_flops_in_published_range():
    # 240 cores x 1.296 GHz x 2 flops (MAD) = 622 GFLOP/s
    assert GT200.peak_flops == pytest.approx(622e9, rel=0.01)


def test_gt200_memory_capped_at_1gib():
    # Paper: "we limit RAM usage to 1 GB".
    assert GT200.mem_capacity == 1 * GIB


def test_gt200_has_no_float_atomics():
    # Paper Section 5.3.4 relies on this.
    assert not GT200.has_float_atomics


def test_gpu_spec_with_memory_returns_modified_copy():
    bigger = GT200.with_memory(4 * GIB)
    assert bigger.mem_capacity == 4 * GIB
    assert GT200.mem_capacity == 1 * GIB
    assert bigger.sm_count == GT200.sm_count


def test_gpu_spec_validation():
    with pytest.raises(ValueError):
        GPUSpec(
            name="bad",
            sm_count=0,
            cores_per_sm=8,
            clock_hz=1e9,
            mem_capacity=1,
            mem_bandwidth=1,
        )


def test_opteron_core_count():
    assert OPTERON_2216_2P.core_count == 4  # 2 sockets x 2 cores


def test_node_pcie_links_pair_gpus():
    # 4 GPUs, 2 per PCI-e cable => 2 links.
    assert ACCELERATOR_NODE.pcie_links == 2


def test_cluster_total_gpus():
    assert ACCELERATOR.total_gpus == 128  # 32 nodes x 4


def test_placement_packs_nodes_first():
    placement = ACCELERATOR.placement(6)
    assert placement == ((0, 0), (0, 1), (0, 2), (0, 3), (1, 0), (1, 1))


def test_placement_rejects_overflow():
    small = ClusterSpec(name="tiny", node=ACCELERATOR_NODE, node_count=1)
    with pytest.raises(ValueError):
        small.placement(5)


def test_placement_rejects_zero():
    with pytest.raises(ValueError):
        ACCELERATOR.placement(0)


@pytest.mark.parametrize(
    "gpus,nodes", [(1, 1), (4, 1), (5, 2), (8, 2), (64, 16), (128, 32)]
)
def test_nodes_used(gpus, nodes):
    assert ACCELERATOR.nodes_used(gpus) == nodes


def test_max_resident_threads():
    assert GT200.max_resident_threads == 30 * 1024

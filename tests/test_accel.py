"""The device-array acceleration layer: namespaces, fused kernels, parity.

Three claims are enforced here:

* the **numpy tier** of every namespace-dispatched primitive is the
  bit-parity reference — property-style checks against the direct
  primitives on the edge shapes (empty, single key, all-equal keys,
  non-default dtypes);
* a **fused** run (``fused=True``) of every app is bit-identical to the
  staged map → partial-reduce → partition pipeline on every backend —
  the fused kernels share their arithmetic with the unfused path, so
  fusion is a data-movement optimisation, not a numerics change;
* the optional device tiers (CuPy / Torch) resolve or raise
  :class:`~repro.accel.AccelUnavailable` cleanly — never an ImportError
  at module scope.
"""

import time
from dataclasses import replace

import numpy as np
import pytest

from repro.accel import (
    ACCEL_TIERS,
    AccelUnavailable,
    NumpyNamespace,
    available_tiers,
    namespace_of,
    resolve_namespace,
)
from repro.apps.kmeans import kmc_dataset, kmc_job
from repro.apps.linear_regression import lr_dataset, lr_job
from repro.apps.matmul import (
    _phase2_chunks,
    mm_dataset,
    mm_phase1_job,
    mm_phase2_job,
)
from repro.apps.sparse_int_occurrence import sio_dataset, sio_job
from repro.apps.word_occurrence import wo_dataset, wo_job
from repro.core import (
    KeyValueSet,
    Mapper,
    MapReduceJob,
    PipelineConfig,
    RoundRobinPartitioner,
    make_executor,
)
from repro.core.chunk import Chunk
from repro.core.combine import SumCombiner
from repro.core.stats import WorkerStats
from repro.exec.dataflow import MapRunner, reduce_worker
from repro.obs import Observability
from repro.primitives import (
    exclusive_scan,
    inclusive_scan,
    radix_sort_pairs,
    segmented_reduce,
    unique_segments,
)

NS = resolve_namespace("numpy")


# -- namespace resolution ----------------------------------------------------

def test_numpy_tier_always_resolves_and_is_cached():
    assert isinstance(NS, NumpyNamespace)
    assert NS.is_host and NS.name == "numpy"
    assert resolve_namespace("numpy") is NS
    assert "numpy" in available_tiers()


def test_unknown_tier_is_a_value_error():
    with pytest.raises(ValueError, match="unknown accel"):
        resolve_namespace("tpu")


@pytest.mark.parametrize("tier", [t for t in ACCEL_TIERS if t != "numpy"])
def test_device_tiers_resolve_or_raise_cleanly(tier):
    """Missing CuPy/Torch must surface as AccelUnavailable, not an
    ImportError — callers (and CI) skip, they do not crash."""
    try:
        ns = resolve_namespace(tier)
    except AccelUnavailable as exc:
        assert tier in str(exc)
    else:
        assert ns.name == tier and not ns.is_host


def test_namespace_of_judges_by_module():
    assert namespace_of(np.arange(3)) is NS
    assert namespace_of([1, 2, 3]) is None
    assert namespace_of("strings belong to no tier") is None


def test_config_validates_accel_tier():
    with pytest.raises(ValueError, match="accel"):
        PipelineConfig(accel="tpu")


def test_executor_validates_accel_tier():
    with pytest.raises(ValueError, match="unknown accel"):
        make_executor("serial", 2, accel="tpu")


# -- numpy-tier primitive properties ----------------------------------------

def _rng():
    return np.random.default_rng(42)


def test_sort_pairs_matches_primitive_and_stable_reference():
    rng = _rng()
    keys = rng.integers(0, 50, size=400).astype(np.uint32)
    values = rng.standard_normal(400)
    ks, vs = NS.sort_pairs(keys, values, key_bits=6)
    rk, rv = radix_sort_pairs(keys, values, key_bits=6)
    assert np.array_equal(ks, rk) and np.array_equal(vs, rv)
    order = np.argsort(keys, kind="stable")
    assert np.array_equal(ks, keys[order])
    assert np.array_equal(vs, values[order])


@pytest.mark.parametrize(
    "keys",
    [
        np.array([], dtype=np.uint32),                 # empty
        np.array([7], dtype=np.uint32),                # single key
        np.full(64, 9, dtype=np.uint32),               # all-equal keys
        np.array([3, 1, 3, 1, 2], dtype=np.uint64),    # non-default dtype
    ],
    ids=["empty", "single", "all-equal", "uint64"],
)
def test_sort_and_segments_edge_shapes(keys):
    values = np.arange(len(keys), dtype=np.int64)
    ks, vs = NS.sort_pairs(keys, values)
    assert ks.dtype == keys.dtype and len(ks) == len(keys)
    runs = NS.unique_segments(ks)
    ref = unique_segments(np.sort(keys, kind="stable"))
    assert np.array_equal(runs.unique_keys, ref.unique_keys)
    assert np.array_equal(runs.counts, ref.counts)
    assert runs.counts.sum() == len(keys)
    # stability: equal keys keep emission order of their values
    order = np.argsort(keys, kind="stable")
    assert np.array_equal(vs, values[order])


@pytest.mark.parametrize(
    "values,offsets",
    [
        (np.array([], dtype=np.float64), np.array([], dtype=np.int64)),
        (np.array([5.0]), np.array([0])),
        (np.arange(12, dtype=np.int64), np.array([0, 5, 5, 9])),
        (np.arange(8, dtype=np.float32), np.array([0, 8])),
    ],
    ids=["empty", "single", "with-empty-segment", "float32"],
)
def test_segmented_reduce_matches_primitive(values, offsets):
    got = NS.segmented_reduce(values, offsets, op="sum")
    ref = segmented_reduce(values, offsets, op="sum")
    assert got.dtype == ref.dtype
    assert np.array_equal(got, ref)


@pytest.mark.parametrize(
    "values",
    [
        np.array([], dtype=np.int64),
        np.array([3], dtype=np.int64),
        np.arange(100, dtype=np.int64),
        _rng().integers(0, 9, size=33).astype(np.uint32),
    ],
    ids=["empty", "single", "arange", "uint32"],
)
def test_scans_match_primitives(values):
    assert np.array_equal(NS.exclusive_scan(values), exclusive_scan(values))
    assert np.array_equal(NS.inclusive_scan(values), inclusive_scan(values))


def test_add_at_and_bincount_match_numpy():
    rng = _rng()
    idx = rng.integers(0, 16, size=200)
    vals = rng.standard_normal(200)
    table = NS.zeros(16, dtype=np.float64)
    NS.add_at(table, idx, vals)
    ref = np.zeros(16)
    np.add.at(ref, idx, vals)
    assert table.tobytes() == ref.tobytes()
    counts = NS.bincount(idx, minlength=32)
    assert np.array_equal(counts, np.bincount(idx, minlength=32))


# -- fused / unfused job validation -----------------------------------------

def test_fused_kernel_rejects_combiner():
    job = sio_job(key_space=1 << 10)
    with pytest.raises(ValueError, match="fused kernel subsumes"):
        replace(job, combiner=SumCombiner())


def test_fused_config_requires_fused_kernel():
    job = lr_job(use_accumulation=False)  # the naive port has none
    assert job.fused is None
    with pytest.raises(ValueError, match="fused"):
        job.with_config(fused=True)


def test_fused_flag_on_fusedless_job_fails_at_run_time():
    ds = lr_dataset(2_000, chunk_points=600, seed=5)
    ex = make_executor("serial", 2, fused=True)
    with pytest.raises(ValueError, match="fused"):
        ex.run(lr_job(use_accumulation=False).with_config(enable_stealing=False), ds)


# -- fused == unfused, bit for bit ------------------------------------------

def _assert_outputs_identical(ref, other, tag):
    assert len(ref.outputs) == len(other.outputs), tag
    for rank, (a, b) in enumerate(zip(ref.outputs, other.outputs)):
        where = f"{tag} rank {rank}"
        assert (a is None) == (b is None), where
        if a is None:
            continue
        assert a.keys.dtype == b.keys.dtype, where
        assert a.values.dtype == b.values.dtype, where
        assert np.array_equal(a.keys, b.keys), where
        assert a.values.tobytes() == b.values.tobytes(), where
        assert a.scale == b.scale, where


def _app_cases():
    sio_ds = sio_dataset(60_000, chunk_elements=9_000, key_space=1 << 14, seed=3)
    wo_ds = wo_dataset(1 << 16, chunk_chars=10_000, n_words=1_500, seed=7)
    kmc_ds = kmc_dataset(8_000, n_centers=8, dims=3, chunk_points=1_500, seed=11)
    lr_ds = lr_dataset(12_000, chunk_points=2_500, seed=5)
    return [
        pytest.param("SIO", sio_job(key_space=1 << 14), sio_ds, id="sio"),
        pytest.param("WO", wo_job(3, n_words=1_500), wo_ds, id="wo"),
        pytest.param("KMC", kmc_job(kmc_ds), kmc_ds, id="kmc"),
        pytest.param("LR", lr_job(), lr_ds, id="lr"),
    ]


BACKENDS = ("sim", "serial", "local", "cluster")


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("app,job,ds", _app_cases())
def test_fused_matches_unfused_every_backend(app, job, ds, backend):
    """accel="numpy" fused output == the staged pipeline, bitwise, on
    all four backends (the accel-parity CI gate)."""
    job = job.with_config(enable_stealing=False)
    ref = make_executor("serial", 3).run(job, ds)
    got = make_executor(backend, 3, fused=True).run(job, ds)
    _assert_outputs_identical(ref, got, f"{app}/{backend}/fused")


@pytest.mark.parametrize("backend", ("sim", "serial"))
def test_mm_fused_matches_unfused_both_phases(backend):
    ds = mm_dataset(256, tile=64, kspan=2, seed=13)
    job1 = mm_phase1_job(ds).with_config(enable_stealing=False)
    job2 = mm_phase2_job(ds).with_config(enable_stealing=False)
    p1_ref = make_executor("serial", 3).run(job1, ds)
    p1_fused = make_executor(backend, 3, fused=True).run(job1, ds)
    _assert_outputs_identical(p1_ref, p1_fused, f"mm-p1/{backend}")
    chunks = _phase2_chunks(ds, p1_ref)
    p2_ref = make_executor("serial", 3).run(job2, chunks=chunks)
    p2_fused = make_executor(backend, 3, fused=True).run(job2, chunks=chunks)
    _assert_outputs_identical(p2_ref, p2_fused, f"mm-p2/{backend}")


def test_fused_runner_counts_no_device_bytes_on_numpy():
    """On the host tier parts are born on host: the one-crossing
    counter must stay zero."""
    ds = lr_dataset(4_000, chunk_points=1_000, seed=5)
    runner = MapRunner(lr_job().with_config(enable_stealing=False), 2, fused=True)
    for chunk in ds.chunks():
        runner.feed(chunk)
    out = runner.finish()
    assert out.bytes_device_to_host == 0
    assert all(part.is_host for parts in out.parts for part in parts)


# -- the _emit fast path -----------------------------------------------------

class _PassthroughMapper(Mapper):
    def map_chunk(self, chunk):
        data = chunk.data
        return KeyValueSet(
            keys=data.astype(np.uint32),
            values=np.ones(len(data), dtype=np.int32),
            scale=chunk.scale,
        )

    def map_cost(self, chunk):
        return []


def _raw_job(partitioner):
    return MapReduceJob(
        name="raw",
        mapper=_PassthroughMapper(),
        reducer=None,
        partitioner=partitioner,
        key_bytes=4,
        value_bytes=4,
        key_bits=8,
    )


def _one_chunk(n=64):
    rng = _rng()
    return Chunk(index=0, data=rng.integers(0, 200, size=n),
                 logical_items=n, logical_bytes=4 * n)


def test_emit_fast_path_no_partitioner_routes_whole_to_rank0():
    chunk = _one_chunk()
    runner = MapRunner(_raw_job(None), 3)
    runner.feed(chunk)
    out = runner.finish()
    assert len(out.parts[0]) == 1 and not out.parts[1] and not out.parts[2]
    assert out.part_chunk_ids[0] == [0]
    kv = out.parts[0][0]
    assert np.array_equal(kv.keys, chunk.data.astype(np.uint32))
    assert out.bytes_binned == kv.nbytes_logical
    assert out.bytes_binned_by_dest == [kv.nbytes_logical, 0, 0]


def test_emit_fast_path_single_worker_matches_partition_parts():
    chunk = _one_chunk()
    job = _raw_job(RoundRobinPartitioner())
    runner = MapRunner(job, 1)
    runner.feed(chunk)
    out = runner.finish()
    kv = _PassthroughMapper().map_chunk(chunk)
    (slow_part,) = job.partition_parts(kv, 1)
    fast = out.parts[0][0]
    assert fast.keys.tobytes() == slow_part.keys.tobytes()
    assert fast.values.tobytes() == slow_part.values.tobytes()
    assert out.bytes_binned == slow_part.nbytes_logical


# -- kvset host/device helpers ----------------------------------------------

def test_kvset_is_host_and_to_host_identity():
    kv = KeyValueSet(
        keys=np.arange(5, dtype=np.uint32),
        values=np.arange(5, dtype=np.int64),
        scale=1.0,
    )
    assert kv.is_host
    assert kv.to_host() is kv
    assert kv.to_host(NS) is kv


# -- reduce_worker span anchoring (one clock, rebased once) ------------------

def test_reduce_spans_share_one_monotonic_timebase():
    job = sio_job(key_space=1 << 10).with_config(enable_stealing=False)
    rng = _rng()
    incoming = [
        KeyValueSet(
            keys=rng.integers(0, 1 << 10, size=500).astype(np.uint32),
            values=np.ones(500, dtype=np.int32),
            scale=1.0,
        )
    ]
    obs = Observability()
    stats = WorkerStats(rank=0)
    t_before = time.time()
    out = reduce_worker(job, incoming, stats=stats, obs=obs)
    t_after = time.time()
    assert out is not None
    spans = {r["name"]: r for r in obs.tracer.records}
    sort, reduce_ = spans["sort"], spans["reduce"]
    # Both edges derive from one perf_counter rebased once: the sort
    # span's end IS the reduce span's start, not two wall-clock reads.
    assert sort["ts"] + sort["dur"] == pytest.approx(reduce_["ts"], abs=1e-9)
    for span in (sort, reduce_):
        assert t_before <= span["ts"] <= span["ts"] + span["dur"] <= t_after
    # The span edges carry the wall-clock rebase, so their difference
    # rounds a few ulps away from the raw perf_counter delta.
    assert stats.stage_seconds["sort"] == pytest.approx(sort["dur"], abs=1e-5)

"""Observability layer: tracer, metrics, serialization, CLI, parity.

The fast half covers the instruments themselves — span/event recording
and ordering, histogram percentiles, snapshot/absorb merging, the
JSONL and Chrome ``trace_event`` serializations, the ``JobStats`` dict
round-trip, and the view CLI — plus traced-vs-untraced bit-parity on
the in-process backends (sim, serial).

The ``slow`` half runs the same parity contract on the process
backends (local, cluster) and checks the fault chronology a traced
cluster run records: kill -9 -> rank_dead -> reclaim -> respawn ->
rejoin, attributed to the right rank.
"""

import json

import numpy as np
import pytest

from repro.apps.sparse_int_occurrence import sio_dataset, sio_job
from repro.core import FaultPlan, make_executor
from repro.core.stats import JobStats, WorkerStats
from repro.obs import (
    BYTES_BUCKETS,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NULL_OBS,
    NULL_TRACER,
    Observability,
    Tracer,
    chrome_trace,
    read_jsonl,
)
from repro.obs.view import main as view_main, render


def _dataset():
    return sio_dataset(
        n_elements=48_000, chunk_elements=4_000, key_space=1 << 13, seed=5
    )


def _assert_bit_identical(ref, got, tag):
    assert len(ref.outputs) == len(got.outputs), tag
    for rank, (a, b) in enumerate(zip(ref.outputs, got.outputs)):
        where = f"{tag} rank {rank}"
        assert (a is None) == (b is None), where
        if a is None:
            continue
        assert np.array_equal(a.keys, b.keys), where
        assert a.values.tobytes() == b.values.tobytes(), where


def _run(backend, n_workers=3, obs=None, **kwargs):
    ds = _dataset()
    ex = make_executor(backend, n_workers, obs=obs, **kwargs)
    try:
        return ex.run(sio_job(ds.key_space), dataset=ds)
    finally:
        close = getattr(ex, "close", None)
        if close is not None:
            close()


# -- tracer ------------------------------------------------------------------

def test_tracer_spans_events_and_ordering():
    clock = iter(float(i) for i in range(100))
    tracer = Tracer(clock=lambda: next(clock))
    with tracer.span("outer", rank=0):
        with tracer.span("inner", rank=0, chunk=3):
            pass
        tracer.event("steal", rank=1, victim=0)
    recs = tracer.sorted_records()
    # inner closes before outer, so it carries the earlier seq at a
    # later ts; the event landed between the two closes.
    names = [r["name"] for r in recs]
    assert names == ["outer", "inner", "steal"]
    inner = recs[1]
    assert inner["ev"] == "span" and inner["chunk"] == 3
    assert inner["dur"] == pytest.approx(1.0)
    outer = recs[0]
    assert outer["ts"] == 0.0 and outer["dur"] == pytest.approx(4.0)
    steal = recs[2]
    assert steal["ev"] == "event"
    assert steal["rank"] == 1 and steal["args"] == {"victim": 0}
    assert len(tracer) == 3


def test_tracer_default_rank_and_absorb_reseq():
    worker = Tracer(rank=7)
    worker.add_span("chunk_map", 1.0, 2.0)
    assert worker.records[0]["rank"] == 7
    driver = Tracer()
    driver.event("grant", rank=0, ts=0.5)
    driver.absorb(worker.records)
    seqs = [r["seq"] for r in driver.records]
    assert seqs == sorted(seqs) and len(set(seqs)) == 2
    assert [r["name"] for r in driver.sorted_records()] == ["grant", "chunk_map"]


def test_null_tracer_is_a_noop():
    assert not NULL_TRACER.enabled
    with NULL_TRACER.span("anything", rank=0):
        NULL_TRACER.event("steal")
        NULL_TRACER.add_span("x", 0.0, 1.0)
    assert len(NULL_TRACER) == 0 and NULL_TRACER.records == []
    assert NULL_OBS.tracer is NULL_TRACER
    assert NULL_OBS.metrics is NULL_METRICS
    assert NULL_OBS.export() is None


# -- metrics -----------------------------------------------------------------

def test_histogram_percentiles_and_merge():
    h = Histogram()
    for v in (0.001, 0.002, 0.004, 0.008, 0.1):
        h.observe(v)
    s = h.summary()
    assert s["count"] == 5
    assert s["max"] == pytest.approx(0.1)
    assert s["mean"] == pytest.approx(0.023)
    # p50 lands in the bucket holding the 3rd observation (0.004's
    # bucket spans (0.002, 0.004]); bucket-resolution accuracy.
    assert 0.002 <= s["p50"] <= 0.004
    assert s["p99"] <= 0.1
    other = Histogram()
    other.observe(1.0)
    h.merge(other)
    assert h.count == 6 and h.max == pytest.approx(1.0)
    with pytest.raises(ValueError):
        h.merge(Histogram(bounds=BYTES_BUCKETS))


def test_histogram_dict_round_trip_empty_and_filled():
    empty = Histogram.from_dict(Histogram().to_dict())
    assert empty.count == 0 and empty.percentile(0.5) == 0.0
    h = Histogram(bounds=BYTES_BUCKETS)
    h.observe(100.0)
    h2 = Histogram.from_dict(h.to_dict())
    assert h2.count == 1 and h2.min == pytest.approx(100.0)
    assert h2.bounds == h.bounds


def test_registry_snapshot_absorb_round_trip():
    worker = MetricsRegistry()
    worker.counter("steals").inc(3)
    worker.gauge("chunks_total").set(12)
    worker.histogram("grant_latency_s").observe(0.01)
    driver = MetricsRegistry()
    driver.counter("steals").inc()
    driver.absorb(worker.snapshot())
    snap = driver.snapshot()
    assert snap["counters"]["steals"] == 4
    assert snap["gauges"]["chunks_total"] == 12
    assert snap["histograms"]["grant_latency_s"]["count"] == 1
    # snapshots are JSON-serializable as-is
    json.dumps(snap)
    null = NULL_METRICS
    null.counter("x").inc()
    null.histogram("y").observe(1.0)
    assert null.snapshot() is None


# -- JobStats round trip -----------------------------------------------------

def test_jobstats_dict_round_trip():
    w = WorkerStats(rank=1)
    for stage in ("map", "bin", "sort", "reduce"):
        w.add(stage, 0.25)
    w.chunks_mapped = 4
    w.chunks_stolen = 1
    w.pairs_emitted_logical = 1000
    w.bytes_sent_network = 2048
    stats = JobStats(
        job_name="sio", n_gpus=2, elapsed=1.5,
        workers=[WorkerStats(rank=0), w],
        chunks_reclaimed=2, speculative_wins=1,
        retries_by_worker=[0, 2], clock="wall",
    )
    back = JobStats.from_dict(stats.to_dict())
    assert back.job_name == "sio" and back.n_gpus == 2
    assert back.elapsed == pytest.approx(1.5)
    assert back.clock == "wall"
    assert back.chunks_reclaimed == 2 and back.speculative_wins == 1
    assert back.retries_by_worker == [0, 2]
    assert back.workers[1].stage_seconds == w.stage_seconds
    assert back.workers[1].chunks_stolen == 1
    assert back.workers[1].bytes_sent_network == 2048
    json.dumps(stats.to_dict())  # JSON-clean, for the trace header


def test_describe_labels_clock_domain():
    sim = JobStats(job_name="x", n_gpus=1, elapsed=1.0,
                   workers=[WorkerStats(rank=0)])
    wall = JobStats(job_name="x", n_gpus=1, elapsed=1.0,
                    workers=[WorkerStats(rank=0)], clock="wall")
    assert "simulated" in sim.describe()
    assert "wall-clock" in wall.describe()
    assert "simulated" not in wall.describe()


# -- serialization + CLI -----------------------------------------------------

def _small_traced_run(tmp_path, backend="serial"):
    obs = Observability()
    trace_path = tmp_path / "run.trace.jsonl"
    ds = _dataset()
    ex = make_executor(backend, 2, obs=obs, trace_path=str(trace_path))
    result = ex.run(sio_job(ds.key_space), dataset=ds)
    return obs, trace_path, result


def test_jsonl_round_trip(tmp_path):
    obs, trace_path, _result = _small_traced_run(tmp_path)
    trace = read_jsonl(str(trace_path))
    assert trace["meta"]["backend"] == "serial"
    assert trace["meta"]["clock"] == "wall"
    assert trace["meta"]["run_id"] == obs.run_id
    assert trace["meta"]["stats"]["workers"]
    assert len(trace["records"]) == len(obs.tracer.records)
    # records come back timeline-ordered with the schema fields intact
    ts = [r["ts"] for r in trace["records"]]
    assert ts == sorted(ts)
    for rec in trace["records"]:
        assert rec["ev"] in ("span", "event")
        assert "name" in rec and "ts" in rec and "rank" in rec
        if rec["ev"] == "span":
            assert rec["dur"] >= 0.0
    assert trace["metrics"]["counters"]["chunks_granted"] > 0


def test_chrome_export_well_formed(tmp_path):
    obs, _trace_path, _result = _small_traced_run(tmp_path)
    doc = chrome_trace(obs.tracer.records, obs.meta)
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    events = doc["traceEvents"]
    phases = {e["ph"] for e in events}
    assert "M" in phases and "X" in phases
    names = {e["args"]["name"] for e in events if e["ph"] == "M"}
    assert "driver" in names and any(n.startswith("rank ") for n in names)
    for e in events:
        assert e["pid"] == 0 and isinstance(e["tid"], int)
        if e["ph"] == "X":
            assert e["ts"] >= 0.0 and e["dur"] >= 0.0
        if e["ph"] == "i":
            assert e["s"] == "t"
    json.dumps(doc)
    # write_chrome produces the same document on disk
    out = tmp_path / "run.chrome.json"
    obs.write_chrome(str(out))
    assert json.loads(out.read_text()) == doc


def test_view_cli_renders_all_sections(tmp_path, capsys):
    _obs, trace_path, _result = _small_traced_run(tmp_path)
    chrome_out = tmp_path / "run.chrome.json"
    rc = view_main([str(trace_path), "--chrome", str(chrome_out), "--grants"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "stage seconds (Figure-2 buckets)" in out
    assert "per-rank timelines" in out
    assert "chronology" in out  # --grants guarantees grant events
    assert "grant_latency_s" in out and "p99=" in out
    assert chrome_out.exists()
    assert json.loads(chrome_out.read_text())["traceEvents"]


def test_render_handles_empty_trace():
    text = render({"meta": {}, "records": [], "metrics": None})
    assert "0 record(s)" in text


def test_record_cli_records_a_sim_trace(tmp_path, capsys):
    from repro.obs.record import main as record_main

    out = tmp_path / "sim.trace.jsonl"
    chrome = tmp_path / "sim.chrome.json"
    rc = record_main([
        "--app", "SIO", "--backend", "sim", "-n", "2",
        "--size", "8000", "--out", str(out), "--chrome", str(chrome),
    ])
    assert rc == 0
    trace = read_jsonl(str(out))
    assert trace["meta"]["backend"] == "sim"
    assert trace["meta"]["clock"] == "simulated"
    assert trace["records"]
    assert json.loads(chrome.read_text())["traceEvents"]


# -- parity + content on the in-process backends -----------------------------

@pytest.mark.parametrize("backend", ["sim", "serial"])
def test_traced_run_is_bit_identical_fast(backend):
    ref = _run(backend)
    obs = Observability()
    got = _run(backend, obs=obs)
    _assert_bit_identical(ref, got, f"{backend} traced parity")
    assert got.obs is obs and ref.obs is None
    names = {r["name"] for r in obs.tracer.records}
    assert {"grant", "chunk_map", "sort", "reduce"} <= names
    chunks = {r["chunk"] for r in obs.tracer.records
              if r["name"] == "chunk_map"}
    assert chunks == set(range(12))  # every chunk mapped exactly once
    if backend == "sim":
        assert obs.meta["clock"] == "simulated"
        assert got.stats.elapsed == pytest.approx(ref.stats.elapsed)


def test_sim_trace_uses_modeled_time():
    obs = Observability()
    got = _run("sim", obs=obs)
    last = max(r["ts"] + r.get("dur", 0.0) for r in obs.tracer.records)
    assert last <= got.stats.elapsed * (1 + 1e-9)


# -- the process backends (slow tier) ----------------------------------------

@pytest.mark.slow
@pytest.mark.parametrize(
    "backend,kwargs",
    [("local", {}), ("cluster", {"timeout_seconds": 60.0})],
)
def test_traced_run_is_bit_identical_process_backends(backend, kwargs):
    ref = _run(backend, **kwargs)
    obs = Observability()
    got = _run(backend, obs=obs, **kwargs)
    _assert_bit_identical(ref, got, f"{backend} traced parity")
    names = {r["name"] for r in obs.tracer.records}
    assert {"grant", "grant_wait", "chunk_map", "shuffle_send",
            "shuffle_recv", "sort", "reduce"} <= names
    snap = obs.metrics.snapshot()
    assert snap["counters"]["chunks_granted"] == 12
    assert snap["histograms"]["grant_latency_s"]["count"] >= 12
    assert snap["histograms"]["shuffle_batch_bytes"]["count"] == 6
    # every chunk_map span names a real rank and a real chunk
    for rec in obs.tracer.records:
        if rec["name"] == "chunk_map":
            assert rec["rank"] in (0, 1, 2) and 0 <= rec["chunk"] < 12


@pytest.mark.slow
def test_cluster_fault_trace_chronology(tmp_path):
    """A traced kill -9 run records the full recovery chronology —
    rank_dead -> reclaim -> respawn -> rejoin, on the killed rank —
    and the trace still exports a well-formed Chrome document."""
    ds = _dataset()
    obs = Observability()
    trace_path = tmp_path / "fault.trace.jsonl"
    result = make_executor(
        "cluster", 3, fault_plan=FaultPlan(kill_rank_at_chunk={1: 2}),
        timeout_seconds=90.0, obs=obs, trace_path=str(trace_path),
    ).run(sio_job(ds.key_space), dataset=ds)
    assert result.stats.chunks_reclaimed > 0

    events = [r for r in obs.tracer.sorted_records() if r["ev"] == "event"]
    chrono = [(r["name"], r["rank"]) for r in events
              if r["name"] in ("rank_dead", "reclaim", "respawn", "rejoin")]
    assert [n for n, _ in chrono] == [
        "rank_dead", "reclaim", "respawn", "rejoin"
    ]
    assert all(rank == 1 for _, rank in chrono)
    reclaim = next(r for r in events if r["name"] == "reclaim")
    assert reclaim["args"]["requeued"] == result.stats.chunks_reclaimed
    assert obs.metrics.snapshot()["counters"]["respawns"] == 1

    trace = read_jsonl(str(trace_path))
    assert trace["meta"]["stats"]["chunks_reclaimed"] > 0
    doc = chrome_trace(trace["records"], trace["meta"])
    assert any(e["ph"] == "i" and e["name"] == "rank_dead"
               for e in doc["traceEvents"])
    json.dumps(doc)


@pytest.mark.slow
def test_local_speculation_events_traced():
    """A scripted straggler under speculation leaves speculate events
    and a win/loss verdict per double-granted chunk in the trace."""
    ds = _dataset()
    obs = Observability()
    result = make_executor(
        "local", 2,
        fault_plan=FaultPlan(stall_seconds={1: 0.3}, speculate_after=0.1),
        obs=obs,
    ).run(
        sio_job(ds.key_space, map_sleep_seconds=0.05), dataset=ds
    )
    events = [r for r in obs.tracer.records if r["ev"] == "event"]
    speculates = [r for r in events if r["name"] == "speculate"]
    verdicts = [r for r in events
                if r["name"] in ("speculation_win", "speculation_loss")]
    assert speculates, "straggler never triggered a speculative grant"
    assert len(verdicts) == len({r["chunk"] for r in speculates})
    wins = sum(r["name"] == "speculation_win" for r in verdicts)
    assert wins == result.stats.speculative_wins


# -- multi-job tagging (the job service's interleaved traces) ----------------

def test_tracer_job_id_tags_records():
    tagged = Tracer(job_id="j1")
    tagged.add_span("chunk_map", 0.0, 1.0, rank=0)
    tagged.event("grant", rank=0, ts=0.5)
    assert all(r["job"] == "j1" for r in tagged.records)
    # Without a job id, records stay exactly as before this field
    # existed — no "job" key at all.
    plain = Tracer()
    plain.add_span("chunk_map", 0.0, 1.0, rank=0)
    assert "job" not in plain.records[0]


def test_absorb_stamps_absorbing_job():
    worker = Tracer(rank=0)
    worker.add_span("chunk_map", 0.0, 1.0)
    driver = Tracer(job_id="j9")
    driver.absorb(worker.records)
    assert driver.records[-1]["job"] == "j9"
    # An already-tagged record keeps its own job through absorption.
    other = Tracer(job_id="j2")
    other.add_span("chunk_map", 2.0, 3.0, rank=1)
    driver.absorb(other.records)
    assert driver.records[-1]["job"] == "j2"


def test_observability_set_job_flows_everywhere():
    obs = Observability()
    obs.set_job("jX")
    obs.tracer.event("grant", rank=0, ts=0.0)
    assert obs.tracer.records[0]["job"] == "jX"
    snap = obs.metrics.snapshot()
    assert snap["job_id"] == "jX"
    obs.finish(backend="sim")
    assert obs.meta["job_id"] == "jX"


def test_view_renders_interleaved_jobs():
    records = []
    for seq, (job, rank, t0) in enumerate(
        [("a", 0, 0.0), ("b", 0, 0.5), ("a", 1, 1.0), ("b", 1, 1.5)]
    ):
        records.append({
            "ev": "span", "name": "chunk_map", "ts": t0, "dur": 0.4,
            "rank": rank, "seq": seq, "job": job,
        })
    text = render({"meta": {"job_id": None}, "records": records,
                   "metrics": None})
    # Two jobs sharing ranks must render as separate labelled
    # timelines, not one merged lane per rank.
    assert "job a" in text and "job b" in text

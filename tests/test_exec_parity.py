"""Sim-vs-real cross-validation of the execution backends.

Every app must produce **bit-identical** per-rank outputs under the
discrete-event sim backend, the in-process serial backend, the
``multiprocessing`` local backend, and the TCP-socket cluster backend,
across multiple worker counts and uneven chunk splits.  This turns the
simulator's functional-correctness claims into checkable facts: the
sim's answers are exactly what real parallel execution of the same job
produces — whether the shuffle rides in-node pipes or a real wire.

Stealing is disabled for the strict parity runs: the parity contract
pins the deterministic round-robin chunk placement, while sim stealing
re-routes chunks based on modeled timing.  The load-balanced
counterpart lives in ``test_steal_parity.py``: sim-recorded steal
schedules replayed bit-for-bit on the real backends.
"""

import multiprocessing as mp
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.apps.kmeans import kmc_dataset, kmc_job, kmc_validate
from repro.apps.linear_regression import lr_dataset, lr_job, lr_validate
from repro.apps.matmul import (
    _phase2_chunks,
    mm_dataset,
    mm_phase1_job,
    mm_phase2_job,
    mm_validate,
    run_matmul,
)
from repro.apps.sparse_int_occurrence import sio_dataset, sio_job, sio_validate
from repro.apps.word_occurrence import wo_dataset, wo_job, wo_validate
from repro.core import Mapper, MapReduceJob, available_backends, make_executor
from repro.core.kvset import KeyValueSet
from repro.exec import WorkerFailure

#: >= 3 worker counts, including the acceptance floor of 4 real
#: multiprocessing workers; none divides the 7-chunk datasets evenly.
WORKER_COUNTS = (2, 4, 5)

BACKENDS = ("sim", "serial", "local", "cluster")

#: The backends that run the dataflow on real OS processes.
PROCESS_BACKENDS = ("local", "cluster")


def _assert_outputs_identical(ref, other, tag):
    assert len(ref.outputs) == len(other.outputs), tag
    for rank, (a, b) in enumerate(zip(ref.outputs, other.outputs)):
        where = f"{tag} rank {rank}"
        assert (a is None) == (b is None), where
        if a is None:
            continue
        assert a.keys.dtype == b.keys.dtype, where
        assert a.values.dtype == b.values.dtype, where
        assert np.array_equal(a.keys, b.keys), where
        # tobytes() comparison is deliberately bitwise: float reductions
        # must happen in the same order on every backend.
        assert a.values.tobytes() == b.values.tobytes(), where
        assert a.scale == b.scale, where


def _run_everywhere(job, n_workers, dataset=None, chunks=None):
    results = {
        b: make_executor(b, n_workers).run(job, dataset=dataset, chunks=chunks)
        for b in BACKENDS
    }
    for backend in BACKENDS[1:]:
        _assert_outputs_identical(
            results["sim"], results[backend], f"{job.name}/{backend}/n={n_workers}"
        )
    return results


def test_backend_registry_is_complete():
    assert set(BACKENDS) <= set(available_backends())
    with pytest.raises(ValueError, match="unknown execution backend"):
        make_executor("quantum", 2)


@pytest.mark.parametrize("n_workers", WORKER_COUNTS)
def test_sio_parity(n_workers):
    ds = sio_dataset(120_000, chunk_elements=18_000, key_space=1 << 16, seed=3)
    assert ds.n_chunks % n_workers != 0  # uneven split
    job = sio_job(key_space=1 << 16).with_config(enable_stealing=False)
    results = _run_everywhere(job, n_workers, dataset=ds)
    sio_validate(results["local"], ds)


@pytest.mark.parametrize("n_workers", WORKER_COUNTS)
def test_wo_parity(n_workers):
    ds = wo_dataset(1 << 18, chunk_chars=40_000, n_words=2_000, seed=7)
    job = wo_job(n_workers, n_words=2_000).with_config(enable_stealing=False)
    results = _run_everywhere(job, n_workers, dataset=ds)
    wo_validate(results["local"], ds)


@pytest.mark.parametrize("n_workers", WORKER_COUNTS)
def test_kmc_parity(n_workers):
    ds = kmc_dataset(30_000, n_centers=16, dims=3, chunk_points=4_500, seed=11)
    assert ds.n_chunks % n_workers != 0
    job = kmc_job(ds).with_config(enable_stealing=False)
    results = _run_everywhere(job, n_workers, dataset=ds)
    kmc_validate(results["local"], ds)


@pytest.mark.parametrize("n_workers", WORKER_COUNTS)
def test_lr_parity(n_workers):
    ds = lr_dataset(40_000, chunk_points=6_000, seed=5)
    assert ds.n_chunks % n_workers != 0
    job = lr_job().with_config(enable_stealing=False)
    results = _run_everywhere(job, n_workers, dataset=ds)
    lr_validate(results["local"], ds)


@pytest.mark.parametrize("n_workers", WORKER_COUNTS)
def test_mm_parity_both_phases(n_workers):
    """MM's two-phase flow: phase-1 shuffle and phase-2 sums match."""
    ds = mm_dataset(512, tile=128, kspan=2, seed=13)
    job1 = mm_phase1_job(ds).with_config(enable_stealing=False)
    job2 = mm_phase2_job(ds).with_config(enable_stealing=False)

    p1 = _run_everywhere(job1, n_workers, dataset=ds)
    # Phase-2 chunks are derived from each backend's own phase-1 output.
    for backend in BACKENDS:
        chunks = _phase2_chunks(ds, p1[backend])
        p2 = make_executor(backend, n_workers).run(job2, chunks=chunks)
        if backend == "sim":
            ref = p2
        else:
            _assert_outputs_identical(ref, p2, f"mm-p2/{backend}/n={n_workers}")


def test_mm_end_to_end_local_product_is_correct():
    """`run_matmul(backend="local")` assembles the right product."""
    ds = mm_dataset(256, tile=64, kspan=2, seed=17)
    result = run_matmul(4, ds, backend="local")
    mm_validate(result, ds)


def test_parity_with_fewer_chunks_than_workers():
    """Chunkless accumulation workers still emit their initial state."""
    ds = lr_dataset(12_000, chunk_points=5_000, seed=23)  # 3 chunks
    assert ds.n_chunks == 3
    job = lr_job().with_config(enable_stealing=False)
    results = _run_everywhere(job, 5, dataset=ds)
    lr_validate(results["local"], ds)


def test_parity_blocks_distribution():
    """The alternative contiguous-blocks placement is canonical too."""
    ds = sio_dataset(60_000, chunk_elements=9_000, key_space=1 << 14, seed=29)
    job = sio_job(key_space=1 << 14).with_config(enable_stealing=False)
    ref = make_executor("sim", 4, initial_distribution="blocks").run(job, dataset=ds)
    for backend in ("serial", "local", "cluster"):
        got = make_executor(backend, 4, initial_distribution="blocks").run(
            job, dataset=ds
        )
        _assert_outputs_identical(ref, got, f"blocks/{backend}")


class _BoomMapper(Mapper):
    """Raises on the first mapped chunk (failure-propagation tests)."""

    def map_chunk(self, chunk):
        raise RuntimeError("boom in worker")

    def map_cost(self, chunk):  # pragma: no cover - never priced
        return []


class _SlowMapper(Mapper):
    """Sleeps through every chunk so a test can kill a rank mid-map."""

    def map_chunk(self, chunk):
        time.sleep(5.0)
        return KeyValueSet(
            keys=np.zeros(1, dtype=np.uint32), values=np.zeros(1)
        )

    def map_cost(self, chunk):  # pragma: no cover - never priced
        return []


class _ChunkZeroBoomMapper(Mapper):
    """Fails only on chunk 0, i.e. on exactly one rank of the job."""

    def map_chunk(self, chunk):
        if chunk.index == 0:
            raise RuntimeError("boom on chunk zero")
        return KeyValueSet(
            keys=np.asarray([chunk.index], dtype=np.uint32),
            values=np.ones(1),
        )

    def map_cost(self, chunk):  # pragma: no cover - never priced
        return []


@pytest.mark.parametrize("backend", PROCESS_BACKENDS)
def test_worker_failure_propagates(backend):
    """A raising mapper surfaces as WorkerFailure, not a hang."""
    ds = sio_dataset(10_000, chunk_elements=2_000, key_space=1 << 10, seed=1)
    job = MapReduceJob(name="boom", mapper=_BoomMapper())
    ex = make_executor(backend, 4, timeout_seconds=60.0)
    with pytest.raises(WorkerFailure, match="boom in worker"):
        ex.run(job, dataset=ds)


@pytest.mark.parametrize("backend", PROCESS_BACKENDS)
def test_single_rank_failure_fails_fast_with_traceback(backend):
    """One failing rank must surface its own traceback promptly while
    its peers are still alive and waiting on the shuffle — not stall
    until the job timeout, and not report a timeout instead."""
    ds = sio_dataset(12_000, chunk_elements=2_000, key_space=1 << 10, seed=3)
    assert ds.n_chunks >= 4
    job = MapReduceJob(
        name="one-boom", mapper=_ChunkZeroBoomMapper()
    ).with_config(enable_stealing=False)
    t0 = time.monotonic()
    with pytest.raises(WorkerFailure, match="boom on chunk zero"):
        make_executor(backend, 3, timeout_seconds=60.0).run(job, dataset=ds)
    assert time.monotonic() - t0 < 30.0


@pytest.mark.parametrize("backend", PROCESS_BACKENDS)
def test_worker_hard_kill_is_detected(backend):
    """SIGKILLing one rank mid-run raises WorkerFailure, never hangs.

    The local driver's liveness watch and the cluster coordinator's
    EOF detection are the two mechanisms under test; both must turn a
    silently dead process into a prompt, attributed failure.
    """
    ds = sio_dataset(9_000, chunk_elements=1_500, key_space=1 << 10, seed=2)
    job = MapReduceJob(name="victim", mapper=_SlowMapper()).with_config(
        enable_stealing=False
    )
    prefix = f"gpmr-{backend}-r"
    killed = threading.Event()

    def _killer():
        deadline = time.monotonic() + 20.0
        while time.monotonic() < deadline:
            ranks = [
                p for p in mp.active_children() if p.name.startswith(prefix)
            ]
            if ranks and all(p.pid is not None for p in ranks):
                os.kill(ranks[0].pid, signal.SIGKILL)
                killed.set()
                return
            time.sleep(0.02)

    killer = threading.Thread(target=_killer, daemon=True)
    killer.start()
    t0 = time.monotonic()
    with pytest.raises(WorkerFailure):
        make_executor(backend, 3, timeout_seconds=60.0).run(job, dataset=ds)
    killer.join(timeout=20.0)
    assert killed.is_set(), "killer thread never found a rank process"
    # Detection must beat both the mappers' sleeps and the job timeout:
    # the failure comes from liveness watching, not from waiting it out.
    assert time.monotonic() - t0 < 30.0


@pytest.mark.parametrize("backend", PROCESS_BACKENDS)
def test_spawn_start_method_parity(backend):
    """The spawn path (pickled job/chunks, fresh interpreters) is
    exercised explicitly — Linux CI otherwise always takes fork."""
    ds = sio_dataset(24_000, chunk_elements=5_000, key_space=1 << 12, seed=31)
    job = sio_job(key_space=1 << 12).with_config(enable_stealing=False)
    ref = make_executor("serial", 3).run(job, dataset=ds)
    got = make_executor(
        backend, 3, start_method="spawn", timeout_seconds=120.0
    ).run(job, dataset=ds)
    _assert_outputs_identical(ref, got, f"spawn/{backend}")


def test_local_stats_are_populated():
    ds = sio_dataset(50_000, chunk_elements=8_000, key_space=1 << 14, seed=2)
    job = sio_job(key_space=1 << 14).with_config(enable_stealing=False)
    result = make_executor("local", 4).run(job, dataset=ds)
    stats = result.stats
    assert stats.elapsed > 0
    assert stats.total_chunks == ds.n_chunks
    assert stats.total_pairs_logical == ds.n_elements
    assert all(w.stage_seconds.get("map", 0) >= 0 for w in stats.workers)
    assert stats.total_network_bytes > 0

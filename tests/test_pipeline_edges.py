"""Edge cases and failure injection for the GPMR pipeline."""

import numpy as np
import pytest

from repro.core import (
    Chunk,
    GPMRRuntime,
    KeyValueSet,
    MapReduceJob,
    Mapper,
    PipelineConfig,
    Reducer,
    RoundRobinPartitioner,
)
from repro.core.binner import Binner
from repro.hw import OutOfDeviceMemory
from repro.hw.specs import ACCELERATOR_NODE, ClusterSpec, GT200, NodeSpec
from repro.net import Communicator, Fabric, StarTopology
from repro.primitives import launch_1d, segmented_reduce
from repro.sim import Environment
from repro.hw.cpu import HostCPU
from repro.util.rng import generator
from repro.util.units import MIB


class EmitMapper(Mapper):
    """Emit <key % 8, 1> per element."""

    def map_chunk(self, chunk):
        return KeyValueSet(
            keys=(chunk.data % 8).astype(np.uint32),
            values=np.ones(len(chunk.data), dtype=np.int64),
            scale=chunk.scale,
        )

    def map_cost(self, chunk):
        return [launch_1d("m", chunk.logical_items, read_bytes_per_item=4.0)]


class SilentMapper(Mapper):
    """A mapper that emits nothing at all."""

    def map_chunk(self, chunk):
        return KeyValueSet.empty(value_dtype=np.int64, scale=chunk.scale)

    def map_cost(self, chunk):
        return [launch_1d("silent", chunk.logical_items, read_bytes_per_item=4.0)]


class SumRed(Reducer):
    def reduce_segments(self, keys, values, offsets, counts, scale):
        return KeyValueSet(keys=keys, values=segmented_reduce(values, offsets), scale=scale)

    def reduce_cost(self, n_values, n_keys):
        return [launch_1d("r", n_values, read_bytes_per_item=8.0)]


def job(mapper=None, **kwargs):
    defaults = dict(
        name="edge",
        mapper=mapper or EmitMapper(),
        reducer=SumRed(),
        partitioner=RoundRobinPartitioner(),
        key_bytes=4,
        value_bytes=8,
        key_bits=3,
    )
    defaults.update(kwargs)
    return MapReduceJob(**defaults)


def chunk_of(n, index=0):
    return Chunk(
        index=index,
        data=np.arange(n, dtype=np.uint32),
        logical_items=n,
        logical_bytes=n * 4,
    )


def test_more_workers_than_chunks():
    """Workers without chunks still participate in shuffle and barrier."""
    result = GPMRRuntime(n_gpus=8).run(job(), chunks=[chunk_of(100)])
    merged = result.merged()
    assert int(merged.values.sum()) == 100


def test_empty_emission_job_completes():
    result = GPMRRuntime(n_gpus=4).run(
        job(mapper=SilentMapper()), chunks=[chunk_of(50, i) for i in range(4)]
    )
    assert result.merged() is None
    assert result.elapsed > 0


def test_single_element_chunk():
    result = GPMRRuntime(n_gpus=2).run(job(), chunks=[chunk_of(1)])
    merged = result.merged()
    assert len(merged) == 1 and int(merged.values[0]) == 1


def test_chunk_larger_than_device_memory_raises():
    huge = Chunk(
        index=0,
        data=np.zeros(8, dtype=np.uint32),
        logical_items=8,
        logical_bytes=2 * GT200.mem_capacity,  # cannot fit
    )
    with pytest.raises(OutOfDeviceMemory):
        GPMRRuntime(n_gpus=1).run(job(), chunks=[huge])


def test_many_tiny_chunks():
    chunks = [chunk_of(10, i) for i in range(100)]
    result = GPMRRuntime(n_gpus=4).run(job(), chunks=chunks)
    assert int(result.merged().values.sum()) == 1000
    assert result.stats.total_chunks == 100


def test_out_of_core_sort_path():
    """A received pair set larger than the sort budget triggers the
    multi-pass sort and still produces exact results."""
    n = 200_000
    cfg = PipelineConfig(sort_in_core_fraction=0.05)
    # Shrink the device so the budget is tiny relative to the pairs.
    small_gpu = GT200.with_memory(16 * MIB)
    node = NodeSpec(
        name="small",
        cpu=ACCELERATOR_NODE.cpu,
        gpu=small_gpu,
        gpus_per_node=4,
        pcie=ACCELERATOR_NODE.pcie,
        nic=ACCELERATOR_NODE.nic,
        host_memory=ACCELERATOR_NODE.host_memory,
    )
    cluster = ClusterSpec(name="small", node=node, node_count=1)
    chunks = [
        Chunk(
            index=i,
            data=generator(i).integers(0, 1 << 20, 50_000).astype(np.uint32),
            logical_items=50_000,
            logical_bytes=200_000,
        )
        for i in range(4)
    ]

    class WideMapper(EmitMapper):
        def map_chunk(self, chunk):
            return KeyValueSet(
                keys=chunk.data,
                values=np.ones(len(chunk.data), dtype=np.int64),
                scale=1.0,
            )

    j = MapReduceJob(
        name="ooc",
        mapper=WideMapper(),
        reducer=SumRed(),
        partitioner=None,  # all to rank 0 => guaranteed over budget
        config=cfg,
        key_bytes=4,
        value_bytes=8,
        key_bits=20,
    )
    result = GPMRRuntime(n_gpus=1, cluster=cluster).run(j, chunks=chunks)
    assert int(result.merged().values.sum()) == n


def test_job_setup_cost_charged_to_scheduler():
    cfg = PipelineConfig(job_setup_seconds=0.5)
    result = GPMRRuntime(n_gpus=2).run(
        job(config=cfg), chunks=[chunk_of(100)]
    )
    for w in result.stats.workers:
        assert w.stage_seconds["scheduler"] >= 0.5
    base = GPMRRuntime(n_gpus=2).run(
        job(config=PipelineConfig(job_setup_seconds=0.0)), chunks=[chunk_of(100)]
    )
    assert result.elapsed >= base.elapsed + 0.5 - 1e-9


def test_config_validation():
    with pytest.raises(ValueError):
        PipelineConfig(sort_in_core_fraction=0.01)
    with pytest.raises(ValueError):
        PipelineConfig(job_setup_seconds=-1)


# ---------------------------------------------------------------------------
# Binner protocol
# ---------------------------------------------------------------------------

def make_binner_env(ranks=2):
    env = Environment()
    topo = StarTopology(ranks, ACCELERATOR_NODE.nic)
    fabric = Fabric(env, topo, ACCELERATOR_NODE.cpu)
    comm = Communicator(env, fabric, list(range(ranks)))
    cpus = [HostCPU(env, ACCELERATOR_NODE.cpu) for _ in range(ranks)]
    binners = [Binner(env, comm, cpus[r], r) for r in range(ranks)]
    return env, comm, binners


def kv(keys, values):
    return KeyValueSet(
        keys=np.asarray(keys, dtype=np.uint32), values=np.asarray(values)
    )


def test_binner_flush_protocol_counts_messages():
    env, comm, (b0, b1) = make_binner_env()
    received = {}

    def sender(env):
        b0.submit([kv([0], [1.0]), kv([1], [2.0])])   # one part per rank
        b0.submit([kv([2], [3.0]), KeyValueSet.empty()])  # only rank 0
        yield b0.drain()
        yield env.all_of(b0.flush())

    def quiet_rank(env):
        yield env.all_of(b1.flush())  # rank 1 sends nothing but must flush

    def receiver(env, binner, rank):
        got = yield from binner.receive_all()
        received[rank] = got

    env.process(sender(env))
    env.process(quiet_rank(env))
    env.process(receiver(env, b0, 0))
    env.process(receiver(env, b1, 1))
    env.run()
    assert len(received[0]) == 2  # two DATA messages to rank 0
    assert len(received[1]) == 1
    assert b0.sent_counts == [2, 1]
    assert b0.bytes_sent > 0


def test_binner_empty_parts_not_sent():
    env, comm, (b0, b1) = make_binner_env()

    def sender(env):
        b0.submit([KeyValueSet.empty(), KeyValueSet.empty()])
        yield b0.drain()
        yield env.all_of(b0.flush())

    def other(env):
        yield env.all_of(b1.flush())

    results = {}

    def receiver(env, binner, rank):
        got = yield from binner.receive_all()
        results[rank] = got

    env.process(sender(env))
    env.process(other(env))
    env.process(receiver(env, b0, 0))
    env.process(receiver(env, b1, 1))
    env.run()
    assert results[0] == [] and results[1] == []

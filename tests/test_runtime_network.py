"""Tests for the runtime's network-topology options (fat-tree support).

The paper's Section 7 argues the right cluster configuration depends on
the job's communication profile; these tests exercise GPMR end-to-end
on a fat-tree with constrained bisection and confirm (a) results stay
exact and (b) oversubscription only hurts communication-bound jobs.
"""

import numpy as np
import pytest

from repro.apps import run_sio  # noqa: F401 - imported for parity with shapes tests
from repro.core import GPMRRuntime
from repro.apps import sio_dataset, sio_job, sio_validate
from repro.apps import kmc_dataset, kmc_job, kmc_validate

M = 1 << 20


def test_network_option_validation():
    with pytest.raises(ValueError):
        GPMRRuntime(n_gpus=1, network="torus")


def test_fat_tree_results_exact():
    ds = sio_dataset(40_000, chunk_elements=5_000, key_space=256, seed=1)
    rt = GPMRRuntime(n_gpus=8, network="fat-tree")
    result = rt.run(sio_job(ds.key_space), ds)
    sio_validate(result, ds)


def test_fat_tree_full_bisection_matches_star():
    ds = sio_dataset(32 * M, chunk_elements=4 * M, sample_factor=32, seed=2)
    star = GPMRRuntime(n_gpus=16, network="star").run(sio_job(ds.key_space), ds)
    tree = GPMRRuntime(
        n_gpus=16, network="fat-tree", oversubscription=1.0
    ).run(sio_job(ds.key_space), ds)
    # Full-bisection fat tree behaves like the non-blocking switch
    # (NIC-limited either way); the multi-hop routes cost a few percent
    # of extra occupancy granularity.
    assert tree.elapsed == pytest.approx(star.elapsed, rel=0.10)


def test_oversubscription_slows_communication_bound_job():
    ds = sio_dataset(32 * M, chunk_elements=4 * M, sample_factor=32, seed=3)
    full = GPMRRuntime(
        n_gpus=16, network="fat-tree", oversubscription=1.0
    ).run(sio_job(ds.key_space), ds)
    starved = GPMRRuntime(
        n_gpus=16, network="fat-tree", oversubscription=16.0
    ).run(sio_job(ds.key_space), ds)
    assert starved.elapsed > full.elapsed * 1.2
    # Results identical regardless of the network.
    np.testing.assert_array_equal(
        np.sort(full.merged().keys), np.sort(starved.merged().keys)
    )


def test_oversubscription_harmless_for_accumulation_job():
    ds = kmc_dataset(32 * M, chunk_points=1 * M, sample_factor=16, seed=4)
    full = GPMRRuntime(
        n_gpus=16, network="fat-tree", oversubscription=1.0
    ).run(kmc_job(ds), ds)
    starved = GPMRRuntime(
        n_gpus=16, network="fat-tree", oversubscription=16.0
    ).run(kmc_job(ds), ds)
    kmc_validate(starved, ds)
    # KMC ships kilobytes: bisection starvation is invisible.
    assert starved.elapsed < full.elapsed * 1.05

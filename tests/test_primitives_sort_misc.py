"""Tests for radix sort, compaction, histogram, and unique primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.hw import GT200, kernel_duration
from repro.primitives import (
    compact,
    compact_cost,
    histogram,
    histogram_cost,
    radix_sort,
    radix_sort_cost,
    radix_sort_pairs,
    significant_bits,
    unique_segments,
    unique_segments_cost,
)


# -- radix sort ---------------------------------------------------------------

def test_radix_sort_basic():
    keys = np.array([170, 45, 75, 90, 2, 802, 24, 66], dtype=np.uint32)
    np.testing.assert_array_equal(radix_sort(keys), np.sort(keys))


def test_radix_sort_empty():
    assert len(radix_sort(np.array([], dtype=np.uint32))) == 0


def test_radix_sort_pairs_carries_values():
    keys = np.array([3, 1, 2], dtype=np.uint32)
    vals = np.array([30, 10, 20])
    sk, sv = radix_sort_pairs(keys, vals)
    np.testing.assert_array_equal(sk, [1, 2, 3])
    np.testing.assert_array_equal(sv, [10, 20, 30])


def test_radix_sort_pairs_2d_values():
    keys = np.array([2, 0, 1], dtype=np.uint32)
    vals = np.arange(6, dtype=np.float64).reshape(3, 2)
    sk, sv = radix_sort_pairs(keys, vals)
    np.testing.assert_array_equal(sk, [0, 1, 2])
    np.testing.assert_array_equal(sv, [[2, 3], [4, 5], [0, 1]])


def test_radix_sort_is_stable():
    keys = np.array([1, 0, 1, 0, 1], dtype=np.uint32)
    vals = np.array([0, 1, 2, 3, 4])
    _, sv = radix_sort_pairs(keys, vals)
    np.testing.assert_array_equal(sv, [1, 3, 0, 2, 4])  # original order kept


def test_radix_sort_rejects_floats_and_negatives():
    with pytest.raises(TypeError):
        radix_sort(np.array([1.5, 2.5]))
    with pytest.raises(ValueError):
        radix_sort(np.array([-1, 2], dtype=np.int64))


def test_radix_sort_value_length_mismatch():
    with pytest.raises(ValueError):
        radix_sort_pairs(np.array([1, 2], dtype=np.uint32), np.array([1]))


def test_significant_bits():
    assert significant_bits(np.array([0], dtype=np.uint32)) == 1
    assert significant_bits(np.array([255], dtype=np.uint32)) == 8
    assert significant_bits(np.array([256], dtype=np.uint32)) == 9
    assert significant_bits(np.array([], dtype=np.uint32)) == 0


@settings(max_examples=100, deadline=None)
@given(arrays(np.uint32, st.integers(0, 500), elements=st.integers(0, 2**32 - 1)))
def test_property_radix_sort_matches_npsort(keys):
    result = radix_sort(keys)
    np.testing.assert_array_equal(result, np.sort(keys))


@settings(max_examples=50, deadline=None)
@given(arrays(np.uint32, st.integers(1, 300), elements=st.integers(0, 10)))
def test_property_radix_sort_pairs_is_permutation(keys):
    vals = np.arange(len(keys))
    sk, sv = radix_sort_pairs(keys, vals)
    # Sorted, same multiset of keys, and values form a permutation.
    assert np.all(np.diff(sk.astype(np.int64)) >= 0)
    np.testing.assert_array_equal(np.sort(sk), np.sort(keys))
    np.testing.assert_array_equal(np.sort(sv), vals)
    np.testing.assert_array_equal(keys[sv], sk)


def test_radix_sort_cost_scales_with_key_bits():
    short = radix_sort_cost(1 << 20, key_bits=8)
    full = radix_sort_cost(1 << 20, key_bits=32)
    assert len(short) == 1 and len(full) == 4
    t_short = sum(kernel_duration(GT200, k) for k in short)
    t_full = sum(kernel_duration(GT200, k) for k in full)
    assert t_full == pytest.approx(4 * t_short)


def test_radix_sort_cost_throughput_plausible():
    # ~1 G pairs/s for 32-bit keys on GT200-class hardware.
    n = 1 << 24
    t = sum(kernel_duration(GT200, k) for k in radix_sort_cost(n, key_bits=32))
    rate = n / t
    assert 2e8 < rate < 4e9


# -- compact -------------------------------------------------------------------

def test_compact_basic():
    v = np.array([1, 2, 3, 4])
    m = np.array([True, False, True, False])
    np.testing.assert_array_equal(compact(v, m), [1, 3])


def test_compact_2d_payload():
    v = np.arange(8).reshape(4, 2)
    m = np.array([False, True, False, True])
    np.testing.assert_array_equal(compact(v, m), [[2, 3], [6, 7]])


def test_compact_length_mismatch():
    with pytest.raises(ValueError):
        compact(np.array([1, 2]), np.array([True]))


def test_compact_cost_validates_fraction():
    with pytest.raises(ValueError):
        compact_cost(100, keep_fraction=1.5)


# -- histogram -------------------------------------------------------------------

def test_histogram_counts():
    keys = np.array([0, 1, 1, 3, 3, 3], dtype=np.int64)
    np.testing.assert_array_equal(histogram(keys, 4), [1, 2, 0, 3])


def test_histogram_range_check():
    with pytest.raises(ValueError):
        histogram(np.array([5]), 4)
    with pytest.raises(ValueError):
        histogram(np.array([-1]), 4)


def test_histogram_requires_integers():
    with pytest.raises(TypeError):
        histogram(np.array([0.5]), 4)


def test_histogram_cost_conflicts_grow_with_few_bins():
    many_bins = histogram_cost(1 << 20, 1 << 16)
    few_bins = histogram_cost(1 << 20, 2)
    assert kernel_duration(GT200, few_bins) > kernel_duration(GT200, many_bins)


@settings(max_examples=60, deadline=None)
@given(arrays(np.int64, st.integers(0, 400), elements=st.integers(0, 31)))
def test_property_histogram_is_conservative(keys):
    h = histogram(keys, 32)
    assert h.sum() == len(keys)
    np.testing.assert_array_equal(h, np.bincount(keys, minlength=32))


# -- unique segments -------------------------------------------------------------

def test_unique_segments_basic():
    keys = np.array([2, 2, 5, 7, 7, 7], dtype=np.uint32)
    runs = unique_segments(keys)
    np.testing.assert_array_equal(runs.unique_keys, [2, 5, 7])
    np.testing.assert_array_equal(runs.offsets, [0, 2, 3])
    np.testing.assert_array_equal(runs.counts, [2, 1, 3])
    assert runs.n_keys == 3


def test_unique_segments_empty():
    runs = unique_segments(np.array([], dtype=np.uint32))
    assert runs.n_keys == 0


def test_unique_segments_rejects_unsorted():
    with pytest.raises(ValueError):
        unique_segments(np.array([3, 1], dtype=np.uint32))


@settings(max_examples=80, deadline=None)
@given(arrays(np.uint32, st.integers(1, 400), elements=st.integers(0, 20)))
def test_property_unique_segments_reconstructs(keys):
    s = np.sort(keys)
    runs = unique_segments(s)
    # Counts sum to n; repeating unique keys by counts rebuilds the array.
    assert runs.counts.sum() == len(s)
    np.testing.assert_array_equal(np.repeat(runs.unique_keys, runs.counts), s)
    # Offsets are the exclusive scan of counts.
    np.testing.assert_array_equal(
        runs.offsets, np.cumsum(runs.counts) - runs.counts
    )


def test_unique_segments_cost_returns_three_launches():
    launches = unique_segments_cost(1 << 20, 1 << 10)
    assert len(launches) == 3

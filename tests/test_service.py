"""The job service, tested fast: auth, cache, pool, authority, daemon.

Unit coverage for each service layer plus a serial-backend daemon
smoke (submit → result parity with one-shot ``run_app``, dataset
cache hit on resubmission).  The heavier concurrent-load tier — many
clients, many jobs, the local backend — is the slow-marked
test_job_service.py run by CI's job-service tier.
"""

import hmac
import json
import pickle
import socket
import threading

import numpy as np
import pytest

from repro.apps import lr_dataset, run_lr, sio_dataset, run_sio
from repro.core.scheduler import JobChunkAuthority
from repro.fabric.wire import (
    HEADER,
    MAGIC,
    MSG_AUTH_CHALLENGE,
    MSG_AUTH_OK,
    MSG_AUTH_RESPONSE,
    MSG_HELLO,
    MSG_JOB_ERROR,
    MSG_SUBMIT,
    MSG_WELCOME,
    PROTOCOL_VERSION,
    AuthenticationError,
    recv_raw_frame,
    send_raw_frame,
)
from repro.obs import Observability
from repro.service import (
    DatasetCache,
    ExecutorPool,
    JobFailed,
    JobService,
    ServiceClient,
)

KEY = b"test-secret"

SIO_SPEC = {"n_elements": 2000, "chunk_elements": 500, "key_space": 128,
            "seed": 3}
LR_SPEC = {"n_points": 1500, "chunk_points": 400, "seed": 4}


@pytest.fixture
def daemon():
    svc = JobService(port=0, default_backend="serial",
                     max_concurrent_jobs=2).start()
    yield svc
    svc.close()


@pytest.fixture
def keyed_daemon():
    svc = JobService(port=0, auth_key=KEY, default_backend="serial",
                     max_concurrent_jobs=1).start()
    yield svc
    svc.close()


# -- auth handshake ---------------------------------------------------------


def test_wrong_key_rejected(keyed_daemon):
    with pytest.raises(AuthenticationError):
        ServiceClient(*keyed_daemon.address, auth_key=b"not-the-key")


def test_missing_key_rejected(keyed_daemon):
    with pytest.raises(AuthenticationError, match="requires an auth key"):
        ServiceClient(*keyed_daemon.address)


def test_right_key_accepted_and_runs(keyed_daemon):
    with ServiceClient(*keyed_daemon.address, auth_key=KEY) as client:
        assert client.server_info["service"] == "gpmr-job-service"
        run = client.submit("LR", LR_SPEC, n_gpus=2, timeout=60)
        assert run.app == "LR"


def test_replayed_challenge_response_fails(keyed_daemon):
    # Session 1: answer the fresh challenge correctly, but keep the
    # digest around like a wire sniffer would.
    s1 = socket.create_connection(keyed_daemon.address, timeout=5)
    s1.settimeout(5)
    _, nonce1 = recv_raw_frame(s1, expect=MSG_AUTH_CHALLENGE)
    sniffed = hmac.new(KEY, nonce1, "sha256").digest()
    send_raw_frame(s1, MSG_AUTH_RESPONSE, sniffed)
    msg, _ = recv_raw_frame(s1)
    assert msg == MSG_AUTH_OK
    s1.close()
    # Session 2: replay the sniffed digest against the new challenge.
    # Nonces are fresh per connection, so the replay must be refused.
    s2 = socket.create_connection(keyed_daemon.address, timeout=5)
    s2.settimeout(5)
    _, nonce2 = recv_raw_frame(s2, expect=MSG_AUTH_CHALLENGE)
    assert nonce2 != nonce1
    send_raw_frame(s2, MSG_AUTH_RESPONSE, sniffed)
    msg, payload = recv_raw_frame(s2)
    assert msg == MSG_JOB_ERROR
    assert b"authentication failed" in payload
    s2.close()


def test_legacy_v4_hello_gets_versioned_error(keyed_daemon):
    """An old (v4) client must get a parseable refusal, not a hang."""
    s = socket.create_connection(keyed_daemon.address, timeout=5)
    s.settimeout(5)
    recv_raw_frame(s, expect=MSG_AUTH_CHALLENGE)
    # Answer with a legacy v4 HELLO frame instead of an AUTH_RESPONSE.
    blob = pickle.dumps({"rank": 0})
    s.sendall(HEADER.pack(MAGIC, 4, MSG_HELLO, len(blob)) + blob)
    msg, payload = recv_raw_frame(s)
    assert msg == MSG_JOB_ERROR
    body = json.loads(payload.decode("utf-8"))
    assert body["protocol_version"] == PROTOCOL_VERSION
    assert body["peer_version"] == 4
    s.close()


def test_legacy_v4_submit_on_keyless_daemon_refused(daemon):
    s = socket.create_connection(daemon.address, timeout=5)
    s.settimeout(5)
    recv_raw_frame(s, expect=MSG_WELCOME)
    blob = pickle.dumps({"seq": 1})
    s.sendall(HEADER.pack(MAGIC, 4, MSG_SUBMIT, len(blob)) + blob)
    msg, payload = recv_raw_frame(s)
    assert msg == MSG_JOB_ERROR
    body = json.loads(payload.decode("utf-8"))
    assert body["protocol_version"] == PROTOCOL_VERSION
    assert body["peer_version"] == 4
    s.close()


def test_garbage_preamble_does_not_kill_daemon(daemon):
    s = socket.create_connection(daemon.address, timeout=5)
    s.settimeout(5)
    recv_raw_frame(s, expect=MSG_WELCOME)
    s.sendall(b"GET / HTTP/1.1\r\n\r\n")
    s.close()
    # The daemon shrugged off the junk connection and still serves.
    with ServiceClient(*daemon.address) as client:
        run = client.submit("LR", LR_SPEC, n_gpus=2, timeout=60)
        assert run.app == "LR"


# -- dataset cache ----------------------------------------------------------


def test_cache_hit_and_miss():
    cache = DatasetCache(max_entries=4)
    ds1, hit1 = cache.get("SIO", SIO_SPEC)
    ds2, hit2 = cache.get("SIO", SIO_SPEC)
    assert (hit1, hit2) == (False, True)
    assert ds2 is ds1
    _, hit3 = cache.get("SIO", {**SIO_SPEC, "seed": 99})
    assert hit3 is False
    assert len(cache) == 2


def test_cache_lru_eviction():
    cache = DatasetCache(max_entries=2)
    cache.get("SIO", SIO_SPEC)
    cache.get("LR", LR_SPEC)
    cache.get("SIO", SIO_SPEC)  # bump SIO to most-recent
    cache.get("WO", {"n_chars": 800, "chunk_chars": 200, "seed": 1})
    assert len(cache) == 2
    _, sio_hit = cache.get("SIO", SIO_SPEC)  # survived (recently used)
    assert sio_hit is True
    _, lr_hit = cache.get("LR", LR_SPEC)  # evicted (least recent)
    assert lr_hit is False


def test_cache_unknown_app():
    with pytest.raises(ValueError, match="unknown app"):
        DatasetCache().get("NOPE", {})


# -- executor pool ----------------------------------------------------------


def test_pool_warm_reuse_same_config():
    obs = Observability()
    with ExecutorPool(obs=obs) as pool:
        ex1 = pool.lease("serial", 2)
        pool.release(ex1)
        ex2 = pool.lease("serial", 2)
        assert ex2 is ex1
        pool.release(ex2)
    snap = obs.metrics.snapshot()
    assert snap["counters"]["pool_cold_builds"] == 1
    assert snap["counters"]["pool_warm_hits"] == 1
    assert ex1.closed  # pool.close retires shelved executors


def test_pool_different_config_builds_cold():
    with ExecutorPool() as pool:
        ex1 = pool.lease("serial", 2)
        pool.release(ex1)
        ex2 = pool.lease("serial", 3)
        assert ex2 is not ex1
        ex3 = pool.lease("sim", 2)
        assert ex3 is not ex1


def test_pool_leased_executor_actually_runs():
    ds = sio_dataset(**SIO_SPEC)
    ref = run_sio(2, ds, backend="serial")
    with ExecutorPool() as pool:
        ex = pool.lease("serial", 2)
        got = run_sio(2, ds, backend="serial", executor=ex)
        pool.release(ex)
        # Warm rerun on the same instance stays bit-identical.
        ex = pool.lease("serial", 2)
        again = run_sio(2, ds, backend="serial", executor=ex)
        pool.release(ex)
    for a, b, c in zip(ref.outputs, got.outputs, again.outputs):
        assert np.array_equal(a.keys, b.keys)
        assert a.values.tobytes() == b.values.tobytes() == c.values.tobytes()


def test_pool_closed_lease_raises():
    pool = ExecutorPool()
    pool.close()
    with pytest.raises(RuntimeError, match="closed ExecutorPool"):
        pool.lease("serial", 2)


# -- job chunk authority ----------------------------------------------------


def test_authority_namespaces_are_isolated():
    from repro.core.scheduler import resolve_chunks

    ds = sio_dataset(**SIO_SPEC)
    chunks = resolve_chunks(ds, None)
    auth = JobChunkAuthority()
    a = auth.open_job(chunks, 2, job_id="a")
    b = auth.open_job(chunks, 2, job_id="b")
    assert set(auth.active_jobs) == {"a", "b"}
    # Drain job a completely; job b's queue must be untouched.
    while a.request(0) or a.request(1):
        pass
    assert a.remaining == 0
    assert b.remaining == len(chunks)
    assert auth.remaining == len(chunks)
    auth.close_job("a")
    assert set(auth.active_jobs) == {"b"}


def test_authority_rejects_live_duplicate_but_supersedes_drained():
    from repro.core.scheduler import resolve_chunks

    ds = sio_dataset(**SIO_SPEC)
    chunks = resolve_chunks(ds, None)
    auth = JobChunkAuthority()
    first = auth.open_job(chunks, 2, job_id="mm")
    with pytest.raises(ValueError, match="in flight"):
        auth.open_job(chunks, 2, job_id="mm")
    while first.request(0) or first.request(1):
        pass
    # Drained: a multi-phase app may reopen the id for its next phase.
    second = auth.open_job(chunks, 2, job_id="mm")
    assert second is not first
    assert auth.get("mm") is second


# -- daemon end-to-end (serial backend; fast) -------------------------------


def test_submit_matches_oneshot(daemon):
    with ServiceClient(*daemon.address) as client:
        run = client.submit("SIO", SIO_SPEC, n_gpus=2, timeout=60)
    ref = run_sio(2, sio_dataset(**SIO_SPEC), backend="serial")
    assert run.size == SIO_SPEC["n_elements"]
    assert run.backend == "serial"
    for a, b in zip(ref.outputs, run.result.outputs):
        assert np.array_equal(a.keys, b.keys)
        assert a.values.tobytes() == b.values.tobytes()


def test_resubmission_hits_dataset_cache(daemon):
    with ServiceClient(*daemon.address) as client:
        cold = client.submit("LR", LR_SPEC, n_gpus=2, timeout=60)
        warm = client.submit("LR", LR_SPEC, n_gpus=2, timeout=60)
    assert cold.cache_hit is False
    assert warm.cache_hit is True
    # A hit only bumps the LRU: ingest is bounded by lock overhead,
    # orders of magnitude under any real dataset build.
    assert warm.ingest_s < 0.05


def test_shipped_dataset_bypasses_cache(daemon):
    ds = lr_dataset(**LR_SPEC)
    with ServiceClient(*daemon.address) as client:
        run = client.submit("LR", dataset=ds, n_gpus=2, timeout=60)
    assert run.cache_hit is False
    ref = run_lr(2, ds, backend="serial")
    for a, b in zip(ref.outputs, run.result.outputs):
        assert (a is None) == (b is None)
        if a is not None:
            assert a.values.tobytes() == b.values.tobytes()


def test_unknown_app_is_job_error(daemon):
    with ServiceClient(*daemon.address) as client:
        with pytest.raises(JobFailed, match="unknown app"):
            client.submit("NOPE", {"n": 1}, timeout=60)
        # The connection survives a failed job.
        run = client.submit("LR", LR_SPEC, n_gpus=2, timeout=60)
        assert run.app == "LR"


def test_pipelined_submissions_one_connection(daemon):
    with ServiceClient(*daemon.address) as client:
        futs = [
            client.submit_async("SIO", SIO_SPEC, n_gpus=2),
            client.submit_async("LR", LR_SPEC, n_gpus=2),
            client.submit_async("SIO", SIO_SPEC, n_gpus=3),
        ]
        runs = [f.result(timeout=60) for f in futs]
    assert [r.app for r in runs] == ["SIO", "LR", "SIO"]
    assert len({r.job_id for r in runs}) == 3


def test_metrics_op(daemon):
    with ServiceClient(*daemon.address) as client:
        client.submit("LR", LR_SPEC, n_gpus=2, timeout=60)
        snap = client.metrics()
    assert snap["metrics"]["counters"]["jobs_completed"] >= 1
    assert "submit_to_result_s" in snap["metrics"]["histograms"]
    assert snap["active_jobs"] == ()


def test_mm_two_phase_through_service(daemon):
    """MM reopens its job id for phase 2 — the supersede path."""
    spec = {"m": 512, "tile": 256, "seed": 7}
    with ServiceClient(*daemon.address) as client:
        run = client.submit("MM", spec, n_gpus=2, timeout=60)
    from repro.apps import mm_dataset, run_matmul

    ref = run_matmul(2, mm_dataset(**spec), backend="serial")
    assert np.array_equal(ref.product, run.result.product)


def test_concurrent_clients_distinct_connections(daemon):
    results = {}
    errors = []

    def one(i):
        try:
            with ServiceClient(*daemon.address) as client:
                results[i] = client.submit(
                    "SIO", SIO_SPEC, n_gpus=2, timeout=60
                )
        except Exception as exc:  # noqa: BLE001 - surfaced via errors
            errors.append(exc)

    threads = [threading.Thread(target=one, args=(i,)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    ref = run_sio(2, sio_dataset(**SIO_SPEC), backend="serial")
    for run in results.values():
        for a, b in zip(ref.outputs, run.result.outputs):
            assert a.values.tobytes() == b.values.tobytes()

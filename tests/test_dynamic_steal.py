"""Native dynamic work-stealing on the real backends, closed-loop.

PR 4 let the real backends *replay* schedules the sim generated; this
tier validates the inverse direction.  Every real backend now pulls
chunks at runtime from the driver's
:class:`~repro.core.scheduler.ChunkService` (serial: interleaved
in-process requests; local: a service thread answering worker queues;
cluster: ``CHUNK_REQ``/``CHUNK_GRANT`` control frames), so a run with
stealing enabled from an imbalanced ``single`` placement *generates* a
load-balanced :class:`~repro.core.scheduler.ScheduleTrace` of its own.

The closing contract: replaying that recorded trace on the **sim**
(the ``schedule=`` knob from the record/replay subsystem) must
reproduce the real run's per-rank outputs, per-worker chunk counts,
and per-worker steal ledgers **bit-for-bit** — for every app, on
serial, local, and cluster, including externally launched
``repro.fabric.launch`` ranks.  A deliberately stalled local worker
must demonstrably lose its chunks to its peers, with the trace naming
it as the victim of every steal.

The tier is marked ``slow``: the default ``pytest -m "not slow"`` run
skips it, and CI executes it in its own ``dynamic-steal`` job.
"""

import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.apps.kmeans import kmc_dataset, kmc_job, kmc_validate
from repro.apps.linear_regression import lr_dataset, lr_job, lr_validate
from repro.apps.matmul import (
    _phase2_chunks,
    mm_dataset,
    mm_phase1_job,
    mm_phase2_job,
    mm_validate,
    run_matmul,
)
from repro.apps.sparse_int_occurrence import sio_dataset, sio_job, sio_validate
from repro.apps.word_occurrence import wo_dataset, wo_job, wo_validate
from repro.core import ScheduleTrace, make_executor
from repro.exec import ClusterExecutor

pytestmark = pytest.mark.slow

N_WORKERS = 4

NATIVE_BACKENDS = ("serial", "local", "cluster")

REPO_ROOT = Path(__file__).resolve().parent.parent


def _assert_same_run(ref, got, tag):
    """Bit-identical outputs + matching chunk/steal ledgers."""
    assert len(ref.outputs) == len(got.outputs), tag
    for rank, (a, b) in enumerate(zip(ref.outputs, got.outputs)):
        where = f"{tag} rank {rank}"
        assert (a is None) == (b is None), where
        if a is None:
            continue
        assert a.keys.dtype == b.keys.dtype, where
        assert np.array_equal(a.keys, b.keys), where
        assert a.values.dtype == b.values.dtype, where
        assert a.values.tobytes() == b.values.tobytes(), where
        assert a.scale == b.scale, where
    assert got.stats.steals_by_worker == ref.stats.steals_by_worker, tag
    assert [w.chunks_mapped for w in got.stats.workers] == [
        w.chunks_mapped for w in ref.stats.workers
    ], tag


#: Native steals are timing-dependent on the process backends: in rare
#: scheduling flukes the loaded rank drains its own queue before any
#: peer's first pull lands.  The recorded trace is valid either way;
#: retry a few times so the tier reliably exercises actual steals.
NATIVE_ATTEMPTS = 3


def _run_native(job, backend, dataset=None, chunks=None, **kwargs):
    """One load-balanced native run: stealing on, all chunks on rank 0."""
    for _ in range(NATIVE_ATTEMPTS):
        real = make_executor(
            backend, N_WORKERS, initial_distribution="single", **kwargs
        ).run(job, dataset=dataset, chunks=chunks)
        trace = real.schedule
        assert isinstance(trace, ScheduleTrace), f"{job.name}/{backend}"
        if trace.total_steals > 0:
            break
    else:
        pytest.fail(
            f"{job.name}/{backend} recorded no steals in "
            f"{NATIVE_ATTEMPTS} single-placement runs"
        )
    # The trace's ledgers ARE the run's ledgers.
    assert trace.steals_by_worker(N_WORKERS) == real.stats.steals_by_worker
    assert trace.chunk_counts(N_WORKERS) == [
        w.chunks_mapped for w in real.stats.workers
    ]
    return real


def _assert_sim_replay_matches(job, real, dataset=None, chunks=None, tag=""):
    """The closed loop: the real backend's native trace, replayed on
    the sim, reproduces the real run bit-for-bit."""
    sim = make_executor("sim", N_WORKERS).run(
        job, dataset=dataset, chunks=chunks, schedule=real.schedule
    )
    _assert_same_run(real, sim, tag)
    return sim


def _native_everywhere(job, dataset=None, chunks=None, validate=None):
    for backend in NATIVE_BACKENDS:
        real = _run_native(job, backend, dataset=dataset, chunks=chunks)
        _assert_sim_replay_matches(
            job, real, dataset=dataset, chunks=chunks,
            tag=f"{job.name}/native-steal/{backend}",
        )
        if validate is not None:
            validate(real)


def test_sio_native_steal_round_trips_through_sim():
    ds = sio_dataset(90_000, chunk_elements=9_000, key_space=1 << 15, seed=71)
    job = sio_job(key_space=1 << 15)
    _native_everywhere(job, dataset=ds, validate=lambda r: sio_validate(r, ds))


def test_wo_native_steal_round_trips_through_sim():
    ds = wo_dataset(1 << 17, chunk_chars=12_000, n_words=1_500, seed=73)
    job = wo_job(N_WORKERS, n_words=1_500)
    _native_everywhere(job, dataset=ds, validate=lambda r: wo_validate(r, ds))


def test_kmc_native_steal_round_trips_through_sim():
    ds = kmc_dataset(24_000, n_centers=12, dims=3, chunk_points=2_400, seed=79)
    job = kmc_job(ds)
    _native_everywhere(job, dataset=ds, validate=lambda r: kmc_validate(r, ds))


def test_lr_native_steal_round_trips_through_sim():
    ds = lr_dataset(36_000, chunk_points=3_600, seed=83)
    job = lr_job()
    _native_everywhere(job, dataset=ds, validate=lambda r: lr_validate(r, ds))


@pytest.mark.parametrize("backend", NATIVE_BACKENDS)
def test_mm_native_steal_both_phases(backend):
    """MM's two jobs each generate their own native trace; each one
    replays on the sim against that backend's own phase outputs."""
    ds = mm_dataset(384, tile=96, kspan=2, seed=89)
    for _ in range(NATIVE_ATTEMPTS):
        result = run_matmul(
            N_WORKERS, ds, backend=backend, initial_distribution="single"
        )
        if result.phase1.schedule.total_steals > 0:
            break
    else:
        pytest.fail(f"mm/{backend}: no phase-1 steals in {NATIVE_ATTEMPTS} runs")
    mm_validate(result, ds)
    tr1, tr2 = result.phase1.schedule, result.phase2.schedule

    sim1 = _assert_sim_replay_matches(
        mm_phase1_job(ds), result.phase1, dataset=ds,
        tag=f"mm-p1/native-steal/{backend}",
    )
    # Phase-2 chunks derive from phase-1 outputs; bit-identical phase-1
    # outputs mean the sim rebuilds the identical phase-2 chunk set.
    chunks = _phase2_chunks(ds, sim1)
    assert isinstance(tr2, ScheduleTrace)
    _assert_sim_replay_matches(
        mm_phase2_job(ds), result.phase2, chunks=chunks,
        tag=f"mm-p2/native-steal/{backend}",
    )


def test_serial_native_schedule_is_deterministic():
    """The serial backend's interleaved pull is a fixed request order:
    two identical runs must record the identical trace."""
    ds = sio_dataset(30_000, chunk_elements=3_000, key_space=1 << 12, seed=97)
    job = sio_job(key_space=1 << 12)
    a = _run_native(job, "serial", dataset=ds)
    b = _run_native(job, "serial", dataset=ds)
    assert a.schedule == b.schedule
    _assert_same_run(a, b, "sio/serial-determinism")


def test_stalled_local_worker_loses_chunks_to_its_peers():
    """Fault injection: rank 0 owns every chunk but sleeps before each
    request, so its idle peers must steal its work — and the recorded
    trace must mark those grants as steals with rank 0 as the victim."""
    ds = sio_dataset(48_000, chunk_elements=4_000, key_space=1 << 14, seed=101)
    job = sio_job(key_space=1 << 14)
    real = make_executor(
        "local", N_WORKERS,
        initial_distribution="single",
        stall_seconds={0: 0.05},
    ).run(job, dataset=ds)
    trace = real.schedule

    steals = [g for g in trace if g.was_steal]
    assert steals, "peers never stole from the stalled rank"
    # All chunks lived on rank 0, so every steal robbed rank 0 — and
    # was fetched by somebody else.
    assert all(g.victim == 0 and g.worker != 0 for g in steals)
    # The stalled rank demonstrably lost most of its work: the three
    # healthy peers together mapped more chunks than the stalled owner.
    counts = trace.chunk_counts(N_WORKERS)
    assert sum(counts[1:]) > counts[0]
    assert real.stats.steals_by_worker[0] == 0
    assert sum(real.stats.steals_by_worker[1:]) == len(steals)
    # The stall changes the schedule, never the answers.
    sio_validate(real, ds)
    _assert_sim_replay_matches(
        job, real, dataset=ds, tag="sio/stalled-local",
    )


def test_cluster_externally_launched_ranks_steal_natively():
    """The multi-host path pulls too: ranks joining via
    ``repro.fabric.launch`` request chunks over CHUNK_REQ frames, steal
    from the longest queue, and the recorded trace closes the loop
    through the sim."""
    ds = sio_dataset(40_000, chunk_elements=4_000, key_space=1 << 13, seed=103)
    # The per-chunk map delay widens the stealing window: rank 0 (the
    # loaded rank) spends ~20ms per chunk, so rank 1's first pull —
    # both ranks leave the same barrier — lands while plenty of chunks
    # are still stealable.  Without it, an OS-scheduling fluke can let
    # rank 0 drain all ten chunks first.
    job = sio_job(key_space=1 << 13, map_sleep_seconds=0.02)
    n = 2
    ex = ClusterExecutor(
        n, spawn_ranks=False, timeout_seconds=60.0,
        initial_distribution="single",
    )
    holder = {}

    def _drive():
        try:
            holder["result"] = ex.run(job, dataset=ds)
        except BaseException as exc:  # surfaced in the main thread below
            holder["error"] = exc

    driver = threading.Thread(target=_drive, daemon=True)
    driver.start()
    deadline = time.monotonic() + 30.0
    while ex.coordinator_address is None and "error" not in holder:
        assert time.monotonic() < deadline, "coordinator never came up"
        time.sleep(0.01)
    assert "error" not in holder, holder.get("error")
    host, port = ex.coordinator_address

    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    ranks = [
        subprocess.Popen(
            [
                sys.executable, "-m", "repro.fabric.launch",
                "--coordinator", f"{host}:{port}",
                "--rank", str(r),
                "--listen-host", "127.0.0.1",
                "--timeout", "60",
            ],
            env=env,
        )
        for r in range(n)
    ]
    for p in ranks:
        assert p.wait(timeout=60.0) == 0
    driver.join(timeout=60.0)
    assert "error" not in holder, holder.get("error")

    real = holder["result"]
    trace = real.schedule
    assert isinstance(trace, ScheduleTrace)
    assert trace.total_steals > 0, "external rank 1 never stole from rank 0"
    assert trace.steals_by_worker(n) == real.stats.steals_by_worker
    sim = make_executor("sim", n).run(job, dataset=ds, schedule=trace)
    _assert_same_run(real, sim, "sio/external-ranks-native")
    sio_validate(real, ds)

"""FaultPlan construction and validation contracts."""

import pytest

from repro.core import FaultPlan


def test_defaults_are_a_no_op_plan():
    plan = FaultPlan()
    assert plan.kill_rank_at_chunk == {}
    assert plan.stall_seconds == {}
    assert plan.speculate_after is None
    assert plan.max_respawns == 1
    assert plan.kill_for(0) is None
    assert plan.stall_for(0) == 0.0
    plan.validate_for(1)  # nothing to reject


def test_mappings_are_coerced_to_int_keyed_dicts():
    plan = FaultPlan(kill_rank_at_chunk={"1": "2"}, stall_seconds={0: 1})
    assert plan.kill_rank_at_chunk == {1: 2}
    assert plan.stall_seconds == {0: 1.0}
    assert plan.kill_for(1) == 2
    assert plan.stall_for(0) == 1.0


def test_kill_ordinal_is_one_based():
    with pytest.raises(ValueError, match="1-based"):
        FaultPlan(kill_rank_at_chunk={0: 0})


def test_negative_ranks_rejected():
    with pytest.raises(ValueError, match="rank -1 < 0"):
        FaultPlan(kill_rank_at_chunk={-1: 1})
    with pytest.raises(ValueError, match="rank -2 < 0"):
        FaultPlan(stall_seconds={-2: 0.5})


def test_negative_stall_rejected():
    with pytest.raises(ValueError, match="must be >= 0"):
        FaultPlan(stall_seconds={0: -0.1})


def test_speculate_after_must_be_positive_or_none():
    with pytest.raises(ValueError, match="must be > 0"):
        FaultPlan(speculate_after=0.0)
    with pytest.raises(ValueError, match="must be > 0"):
        FaultPlan(speculate_after=-1.0)
    assert FaultPlan(speculate_after=0.5).speculate_after == 0.5


def test_negative_respawn_budget_rejected():
    with pytest.raises(ValueError, match="max_respawns"):
        FaultPlan(max_respawns=-1)
    assert FaultPlan(max_respawns=0).max_respawns == 0


def test_validate_for_rejects_out_of_range_ranks():
    plan = FaultPlan(kill_rank_at_chunk={3: 1})
    plan.validate_for(4)
    with pytest.raises(ValueError, match="names rank 3, but the run has only"):
        plan.validate_for(3)
    stalled = FaultPlan(stall_seconds={5: 0.2})
    with pytest.raises(ValueError, match="stall_seconds names rank 5"):
        stalled.validate_for(2)


def test_merged_stalls_plan_wins_over_extra():
    plan = FaultPlan(stall_seconds={1: 0.5})
    merged = plan.merged_stalls({0: 0.1, 1: 9.0})
    assert merged == {0: 0.1, 1: 0.5}
    assert plan.merged_stalls(None) == {1: 0.5}

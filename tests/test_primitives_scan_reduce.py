"""Tests for scan and reduce primitives (functional + cost)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.hw import GT200, kernel_duration
from repro.primitives import (
    exclusive_scan,
    inclusive_scan,
    reduce_array,
    reduce_cost,
    scan_cost,
    segmented_reduce,
    segmented_reduce_cost,
    segmented_scan,
)


# -- scan -------------------------------------------------------------------

def test_exclusive_scan_basic():
    np.testing.assert_array_equal(
        exclusive_scan(np.array([3, 1, 7, 0, 4])), [0, 3, 4, 11, 11]
    )


def test_inclusive_scan_basic():
    np.testing.assert_array_equal(
        inclusive_scan(np.array([3, 1, 7, 0, 4])), [3, 4, 11, 11, 15]
    )


def test_scan_empty():
    assert len(exclusive_scan(np.array([], dtype=np.int64))) == 0
    assert len(inclusive_scan(np.array([], dtype=np.int64))) == 0


def test_scan_rejects_2d():
    with pytest.raises(ValueError):
        exclusive_scan(np.zeros((2, 2)))


@settings(max_examples=100, deadline=None)
@given(arrays(np.int64, st.integers(0, 200), elements=st.integers(-1000, 1000)))
def test_property_scan_shift_relation(values):
    """inclusive[i] == exclusive[i] + values[i], and both match cumsum."""
    inc = inclusive_scan(values)
    exc = exclusive_scan(values)
    np.testing.assert_array_equal(inc, np.cumsum(values))
    np.testing.assert_array_equal(inc, exc + values)


def test_segmented_scan_restarts_at_heads():
    values = np.array([1, 2, 3, 4, 5, 6])
    heads = np.array([True, False, True, False, False, True])
    np.testing.assert_array_equal(segmented_scan(values, heads), [1, 3, 3, 7, 12, 6])


def test_segmented_scan_single_segment_is_inclusive_scan():
    values = np.arange(10)
    heads = np.zeros(10, dtype=bool)
    heads[0] = True
    np.testing.assert_array_equal(segmented_scan(values, heads), np.cumsum(values))


def test_segmented_scan_requires_leading_head():
    with pytest.raises(ValueError):
        segmented_scan(np.array([1, 2]), np.array([False, True]))


def test_segmented_scan_length_mismatch():
    with pytest.raises(ValueError):
        segmented_scan(np.array([1, 2]), np.array([True]))


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.lists(st.integers(-50, 50), min_size=1, max_size=9), min_size=1, max_size=12)
)
def test_property_segmented_scan_matches_per_segment_cumsum(segments):
    values = np.array([v for seg in segments for v in seg], dtype=np.int64)
    heads = np.zeros(len(values), dtype=bool)
    pos = 0
    for seg in segments:
        heads[pos] = True
        pos += len(seg)
    expected = np.concatenate([np.cumsum(seg) for seg in segments])
    np.testing.assert_array_equal(segmented_scan(values, heads), expected)


def test_scan_cost_linear_in_n():
    t1 = kernel_duration(GT200, scan_cost(1 << 20))
    t2 = kernel_duration(GT200, scan_cost(1 << 21))
    assert t2 / t1 == pytest.approx(2.0, rel=0.05)


# -- reduce -------------------------------------------------------------------

def test_reduce_ops():
    v = np.array([4, 2, 9, 1])
    assert reduce_array(v, "sum") == 16
    assert reduce_array(v, "min") == 1
    assert reduce_array(v, "max") == 9
    assert reduce_array(v, "prod") == 72


def test_reduce_unknown_op():
    with pytest.raises(ValueError):
        reduce_array(np.array([1]), "median")


def test_reduce_empty_rejected():
    with pytest.raises(ValueError):
        reduce_array(np.array([]))


def test_segmented_reduce_sum():
    values = np.array([1, 2, 3, 4, 5], dtype=np.int64)
    offsets = np.array([0, 2, 2, 4])  # segments [1,2], [], [3,4], [5]
    np.testing.assert_array_equal(
        segmented_reduce(values, offsets), [3, 0, 7, 5]
    )


def test_segmented_reduce_max():
    values = np.array([1, 9, 3, 4])
    offsets = np.array([0, 2])
    np.testing.assert_array_equal(segmented_reduce(values, offsets, "max"), [9, 4])


def test_segmented_reduce_validates_offsets():
    with pytest.raises(ValueError):
        segmented_reduce(np.array([1, 2]), np.array([1]))
    with pytest.raises(ValueError):
        segmented_reduce(np.array([1, 2]), np.array([0, 2, 1]))
    with pytest.raises(ValueError):
        segmented_reduce(np.array([1, 2]), np.array([0, 5]))


def test_segmented_reduce_empty_segment_non_sum_rejected():
    with pytest.raises(ValueError):
        segmented_reduce(np.array([1, 2]), np.array([0, 0]), "max")


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.lists(st.integers(-100, 100), min_size=0, max_size=8), min_size=1, max_size=15)
)
def test_property_segmented_reduce_matches_python_sums(segments):
    values = np.array([v for seg in segments for v in seg], dtype=np.int64)
    offsets = np.zeros(len(segments), dtype=np.int64)
    pos = 0
    for i, seg in enumerate(segments):
        offsets[i] = pos
        pos += len(seg)
    expected = [sum(seg) for seg in segments]
    np.testing.assert_array_equal(segmented_reduce(values, offsets), expected)


def test_reduce_cost_cheaper_than_scan():
    n = 1 << 22
    assert kernel_duration(GT200, reduce_cost(n)) < kernel_duration(
        GT200, scan_cost(n)
    )


def test_segmented_reduce_cost_accounts_outputs():
    few = segmented_reduce_cost(1 << 20, 10)
    many = segmented_reduce_cost(1 << 20, 1 << 19)
    assert kernel_duration(GT200, many) > kernel_duration(GT200, few)

"""Fast integration tests of the paper's performance shapes.

Miniature versions of the headline bench assertions (smaller datasets,
fewer sweep points) so ordinary `pytest tests/` already guards the
reproduction's qualitative claims; the full-scale versions live in
``benchmarks/``.
"""


from repro.apps import (
    kmc_dataset,
    mm_dataset,
    run_kmc,
    run_lr,
    run_matmul,
    run_sio,
    run_wo,
    lr_dataset,
    sio_dataset,
    wo_dataset,
)
from repro.baselines import PhoenixModel
from repro.apps import (
    kmc_phoenix_workload,
    mm_phoenix_workload,
    sio_phoenix_workload,
)

M = 1 << 20


def efficiency(t1, tn, n):
    return t1 / (n * tn)


def test_mm_scales_better_than_sio():
    """Compute-bound vs communication-bound is the paper's core contrast."""
    mm = mm_dataset(8192, tile=1024, kspan=8, sample_factor=16, seed=1)
    t1 = run_matmul(1, mm).elapsed
    t8 = run_matmul(8, mm).elapsed
    mm_eff = efficiency(t1, t8, 8)

    sio = sio_dataset(32 * M, chunk_elements=2 * M, sample_factor=32, seed=1)
    t1 = run_sio(1, sio).elapsed
    t8 = run_sio(8, sio).elapsed
    sio_eff = efficiency(t1, t8, 8)

    assert mm_eff > 0.75
    assert mm_eff > sio_eff + 0.1


def test_sio_superlinear_when_data_fits_in_core():
    """The 4-GPU in-core bump: per-rank pair set drops under the sort
    budget, skipping the out-of-core merge passes."""
    ds = sio_dataset(128 * M, chunk_elements=8 * M, sample_factor=128, seed=2)
    t1 = run_sio(1, ds).elapsed
    t4 = run_sio(4, ds).elapsed
    assert efficiency(t1, t4, 4) > 1.05


def test_kmc_keeps_majority_efficiency_at_16():
    ds = kmc_dataset(128 * M, chunk_points=2 * M, sample_factor=128, seed=3)
    t1 = run_kmc(1, ds).elapsed
    t16 = run_kmc(16, ds).elapsed
    assert efficiency(t1, t16, 16) > 0.6


def test_lr_scaling_is_poor():
    """LR: h2d-bound map, so extra GPUs pay little."""
    ds = lr_dataset(64 * M, chunk_points=2 * M, sample_factor=64, seed=4)
    t1 = run_lr(1, ds).elapsed
    t16 = run_lr(16, ds).elapsed
    assert efficiency(t1, t16, 16) < 0.6


def test_wo_partitioner_crossover_helps_at_scale():
    """Above the GPU threshold the round-robin partitioner must beat
    funnelling every accumulated table into rank 0."""
    ds = wo_dataset(64 * M, chunk_chars=2 * M, sample_factor=64, seed=5)
    with_part = run_wo(16, ds, partitioner_threshold=8).elapsed
    without = run_wo(16, ds, partitioner_threshold=999).elapsed
    assert with_part <= without * 1.02


def test_smaller_inputs_collapse_earlier():
    """Figure 3's within-panel ordering: efficiency grows with size."""
    small = wo_dataset(1 * M, chunk_chars=1 * M, seed=6)
    big = wo_dataset(64 * M, chunk_chars=2 * M, sample_factor=64, seed=6)

    def eff(ds):
        t1 = run_wo(1, ds).elapsed
        t16 = run_wo(16, ds).elapsed
        return efficiency(t1, t16, 16)

    assert eff(big) > eff(small) + 0.15


def test_gpmr_beats_phoenix_everywhere_small():
    """Table 2's headline at reduced size."""
    phoenix = PhoenixModel()

    sio = sio_dataset(8 * M, chunk_elements=1 * M, sample_factor=8, seed=7)
    t = run_sio(1, sio).elapsed
    assert phoenix.runtime(sio_phoenix_workload(sio)).total > t

    kmc = kmc_dataset(8 * M, chunk_points=1 * M, sample_factor=8, seed=7)
    t = run_kmc(1, kmc).elapsed
    assert phoenix.runtime(kmc_phoenix_workload(kmc)).total > t

    mm = mm_dataset(1024, tile=256, kspan=4, sample_factor=4, seed=7)
    t = run_matmul(1, mm).elapsed
    assert phoenix.runtime(mm_phoenix_workload(mm)).total > 20 * t


def test_figure2_shift_sio_sort_to_communication():
    """SIO's bottleneck migrates from sort (1 GPU) to comms (16 GPUs)."""
    ds = sio_dataset(64 * M, chunk_elements=4 * M, sample_factor=64, seed=8)
    f1 = run_sio(1, ds).stats.stage_fractions
    f16 = run_sio(16, ds).stats.stage_fractions
    assert f1["sort"] > 0.3
    comm16 = f16["bin"] + f16["scheduler"]
    assert comm16 > f16["sort"]
    assert comm16 > f1["bin"] + f1["scheduler"]


def test_weak_scaling_stays_flat_for_compute_bound():
    """Table 1's second set: per-GPU-constant input => near-constant
    time for the accumulation jobs."""
    times = {}
    for g in (1, 4, 8):
        ds = kmc_dataset(
            8 * M * g, chunk_points=1 * M, sample_factor=8 * g, seed=9
        )
        times[g] = run_kmc(g, ds).elapsed
    assert times[4] < times[1] * 1.45
    assert times[8] < times[1] * 1.5

"""Wall-clock backend scaling: serial -> local -> cluster vs the sim.

PR 1 made the speed axis *measurable*; the cluster fabric makes the
communication axis *real*.  This bench runs one shuffle-heavy job (SIO,
the paper's all-to-all stress case) on every real backend across a
worker sweep and lines the measured speedups up against the sim's
predicted strong-scaling curve for the same job:

* ``serial`` is the 1-process floor (all ranks in one interpreter —
  its "scaling" is flat by construction and anchors the comparison);
* ``local``  scales over ``multiprocessing`` with pipe shuffle;
* ``cluster`` scales over OS processes joined by the TCP socket
  fabric, so the difference local - cluster is the real wire cost of
  the exchange (framing, pickling to sockets, peer connections);
* ``sim``    contributes the modeled speedup the paper's cost model
  predicts for this worker count.

Smoke mode shrinks the dataset to a functional payload; speedup shapes
are advisory there (process start-up dominates toy sizes).
"""

import os
import time

from repro.apps.sparse_int_occurrence import sio_dataset, sio_job
from repro.core import make_executor
from repro.harness import bench_smoke_enabled

WORKER_COUNTS = (1, 2, 4)
REAL_BACKENDS = ("serial", "local", "cluster")


def _dataset():
    n_elements = (1 << 15) if bench_smoke_enabled() else (4 << 20)
    return sio_dataset(
        n_elements,
        chunk_elements=max(n_elements // 16, 2_048),
        key_space=1 << 16,
        seed=1234,
    )


def _measure():
    ds = _dataset()
    job = sio_job(key_space=1 << 16).with_config(enable_stealing=False)
    wall = {}   # (backend, n) -> seconds
    for backend in REAL_BACKENDS:
        for n in WORKER_COUNTS:
            t0 = time.perf_counter()
            result = make_executor(backend, n).run(job, dataset=ds)
            wall[(backend, n)] = time.perf_counter() - t0
            assert any(kv is not None for kv in result.outputs)
    modeled = {
        n: make_executor("sim", n).run(job, dataset=ds).elapsed
        for n in WORKER_COUNTS
    }
    return ds, wall, modeled


def _render(ds, wall, modeled):
    def speedup(backend, n):
        return wall[(backend, 1)] / wall[(backend, n)]

    lines = [
        f"backend scaling — SIO, {ds.n_elements:,d} elements, "
        f"{ds.n_chunks} chunks (wall-clock vs sim-predicted speedup)",
        f"{'n':>3} {'serial_ms':>10} {'local_ms':>10} {'cluster_ms':>11} "
        f"{'local_x':>8} {'cluster_x':>10} {'sim_x':>7}",
    ]
    for n in WORKER_COUNTS:
        lines.append(
            f"{n:>3} "
            f"{wall[('serial', n)] * 1e3:>10.1f} "
            f"{wall[('local', n)] * 1e3:>10.1f} "
            f"{wall[('cluster', n)] * 1e3:>11.1f} "
            f"{speedup('local', n):>8.2f} "
            f"{speedup('cluster', n):>10.2f} "
            f"{modeled[1] / modeled[n]:>7.2f}"
        )
    return "\n".join(lines)


def test_backend_scaling(benchmark, save_result, check):
    ds, wall, modeled = benchmark.pedantic(_measure, rounds=1, iterations=1)
    save_result("backend_scaling", _render(ds, wall, modeled))

    local_x = wall[("local", 1)] / wall[("local", 4)]
    cluster_x = wall[("cluster", 1)] / wall[("cluster", 4)]
    sim_x = modeled[1] / modeled[4]
    benchmark.extra_info.update(
        {
            "local_speedup_4": round(local_x, 3),
            "cluster_speedup_4": round(cluster_x, 3),
            "sim_predicted_speedup_4": round(sim_x, 3),
        }
    )

    # The sim predicts real strong scaling for SIO at 4 workers...
    check(sim_x > 1.2, "sim predicts SIO strong-scales to 4 workers")
    # ...and with >= 4 real cores the parallel backends must realise
    # some of it (process + socket overheads bound how much).  On
    # fewer cores there is no parallelism to find, so the speedup rows
    # are reported but not asserted.
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        cores = os.cpu_count() or 1
    if cores >= 4:
        check(local_x > 1.1, "local backend shows measurable 4-worker speedup")
        check(
            cluster_x > 1.05, "cluster backend shows measurable 4-worker speedup"
        )
    # The wire costs something, but not an order of magnitude vs pipes.
    check(
        wall[("cluster", 4)] < 10 * wall[("local", 4)],
        "socket shuffle stays within 10x of pipe shuffle",
    )
    # Serial has no parallelism to find: its sweep stays roughly flat.
    check(
        wall[("serial", 4)] < 2.0 * wall[("serial", 1)],
        "serial wall time is ~independent of n_workers",
    )

"""Wall-clock backend scaling: serial -> local -> cluster vs the sim.

PR 1 made the speed axis *measurable*; the cluster fabric made the
communication axis *real*; the zero-copy exchange makes it *fast*.
This bench runs one shuffle-heavy job (SIO, the paper's all-to-all
stress case) on every real backend across a worker sweep and lines the
measured speedups up against the sim's predicted strong-scaling curve
for the same job:

* ``serial``  is the 1-process floor (all ranks in one interpreter —
  its "scaling" is flat by construction and anchors the comparison);
* ``local/pickle`` scales over ``multiprocessing`` with the original
  pickle-over-queue shuffle — the exchange baseline;
* ``local``   is the same backend on the shared-memory zero-copy
  exchange (binary KVSet codec, segments instead of pipes), so the
  difference local/pickle - local is pure exchange-transport cost;
* ``cluster`` scales over OS processes joined by the TCP socket
  fabric with streamed raw-codec batch frames, so the difference
  local - cluster is the real wire cost of the exchange;
* ``sim``     contributes the modeled speedup the paper's cost model
  predicts for this worker count.

Besides wall-clock speedups the bench reports **exchange throughput**
(network-destined shuffle bytes per second of exposed bin time) per
backend — the column that shows the zero-copy win directly — plus the
cluster backend's **frames-per-batch** (how few wire frames the
coalescing data plane needs per (src, dst) shuffle batch) and a
**load-balanced** section: the sim runs the same job with stealing
enabled from an imbalanced ``single`` placement, each real backend
replays the recorded steal schedule (``schedule=``), and — new with
the pull-based chunk service — each real backend also steals
**natively** (idle ranks pulling chunks from the driver at runtime),
so replayed-sim-schedule and native-steal wall-clock columns sit side
by side and both stay bit-validated against the sim.  A final
**killed-rank recovery** row prices fault tolerance: rank 1 SIGKILLs
itself at its 2nd grant (`FaultPlan`), the driver reclaims its chunks
and respawns it mid-job, and the recovered wall-clock sits next to
the failure-free run it must stay bit-identical to.  A closing
**observability** section re-runs the pinned job with the tracer and
metrics registry armed and reports grant round-trip and shuffle-batch
p50/p99 latencies straight from the run's histograms, plus the
wall-clock overhead of recording them (<5% target).

Smoke mode shrinks the dataset to a functional payload; speedup shapes
are advisory there (process start-up dominates toy sizes).
"""

import os
import time

from repro.apps.sparse_int_occurrence import sio_dataset, sio_job
from repro.core import FaultPlan, make_executor
from repro.harness import bench_smoke_enabled
from repro.obs import Observability

WORKER_COUNTS = (1, 2, 4)

#: (label, backend, executor kwargs) — label is the table row key.
VARIANTS = (
    ("serial", "serial", {}),
    ("local/pickle", "local", {"exchange": "pickle"}),
    ("local", "local", {"exchange": "shm"}),
    ("cluster", "cluster", {}),
)


def _dataset():
    n_elements = (1 << 15) if bench_smoke_enabled() else (4 << 20)
    return sio_dataset(
        n_elements,
        chunk_elements=max(n_elements // 16, 2_048),
        key_space=1 << 16,
        seed=1234,
    )


def _cores():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _measure():
    ds = _dataset()
    job = sio_job(key_space=1 << 16).with_config(enable_stealing=False)
    wall = {}       # (label, n) -> seconds
    exchange = {}   # (label, n) -> (network_bytes, bin_seconds)
    frames = {}     # (label, n) -> total exchange wire frames (cluster)
    for label, backend, kwargs in VARIANTS:
        for n in WORKER_COUNTS:
            t0 = time.perf_counter()
            result = make_executor(backend, n, **kwargs).run(job, dataset=ds)
            wall[(label, n)] = time.perf_counter() - t0
            assert any(kv is not None for kv in result.outputs)
            exchange[(label, n)] = (
                result.stats.total_network_bytes,
                result.stats.stage_totals["bin"],
            )
            frames[(label, n)] = result.stats.total_shuffle_frames
    modeled = {
        n: make_executor("sim", n).run(job, dataset=ds).elapsed
        for n in WORKER_COUNTS
    }

    # Load-balanced rows: sim records a steal schedule from an
    # imbalanced placement; the real backends replay it chunk-for-chunk
    # (the steal-parity contract keeps the outputs bit-identical, so
    # these columns time *scheduling*, not different answers).
    steal_job = sio_job(key_space=1 << 16)  # stealing on (default)
    steal_wall = {}   # (label, n) -> seconds
    steal_counts = {} # n -> steals in the replayed schedule
    for n in WORKER_COUNTS:
        recorded = make_executor(
            "sim", n, initial_distribution="single"
        ).run(steal_job, dataset=ds)
        trace = recorded.schedule
        steal_counts[n] = trace.total_steals
        for label, backend, kwargs in VARIANTS:
            if label == "local/pickle":
                continue  # the exchange baseline adds nothing here
            t0 = time.perf_counter()
            result = make_executor(backend, n, **kwargs).run(
                steal_job, dataset=ds, schedule=trace
            )
            steal_wall[(label, n)] = time.perf_counter() - t0
            assert result.stats.total_steals == trace.total_steals

    # Native rows: the same imbalanced start, but no replayed schedule
    # — each real backend's ranks pull chunks from the driver's chunk
    # service and steal at runtime, recording their own ScheduleTrace.
    native_wall = {}    # (label, n) -> seconds
    native_steals = {}  # (label, n) -> steals the backend decided itself
    for n in WORKER_COUNTS:
        for label, backend, kwargs in VARIANTS:
            if label == "local/pickle":
                continue
            t0 = time.perf_counter()
            result = make_executor(
                backend, n, initial_distribution="single", **kwargs
            ).run(steal_job, dataset=ds)
            native_wall[(label, n)] = time.perf_counter() - t0
            assert result.schedule is not None
            native_steals[(label, n)] = result.schedule.total_steals

    # Recovery rows: rank 1 SIGKILLs itself at its 2nd grant; the
    # driver reclaims its un-posted chunks and respawns it mid-job
    # (the cluster replacement rejoins the fabric), so the column is
    # the wall-clock price of surviving a kill -9 vs the pinned run.
    fault = FaultPlan(kill_rank_at_chunk={1: 2})
    n_fault = max(WORKER_COUNTS)
    recovery_wall = {}      # label -> seconds at n_fault workers
    recovery_reclaims = {}  # label -> chunks reclaimed
    for label, backend, kwargs in VARIANTS:
        if label in ("serial", "local/pickle"):
            continue
        t0 = time.perf_counter()
        result = make_executor(
            backend, n_fault, fault_plan=fault, **kwargs
        ).run(job, dataset=ds)
        recovery_wall[label] = time.perf_counter() - t0
        recovery_reclaims[label] = result.stats.chunks_reclaimed

    # Observability rows: the same pinned job re-run once per backend
    # with the tracer + metrics registry armed.  Two things come out:
    # the service/exchange latency distributions (grant round-trip and
    # shuffle-batch encode+post, p50/p99 straight from the run's
    # histogram registry) and the price of recording them — traced
    # wall-clock next to the untraced run above (<5% overhead target).
    n_obs = max(WORKER_COUNTS)
    obs_wall = {}   # label -> traced seconds at n_obs workers
    obs_hists = {}  # label -> {"grant": summary|None, "batch": summary|None}
    for label, backend, kwargs in VARIANTS:
        if label == "local/pickle":
            continue
        obs = Observability()
        t0 = time.perf_counter()
        make_executor(backend, n_obs, obs=obs, **kwargs).run(job, dataset=ds)
        obs_wall[label] = time.perf_counter() - t0
        obs_hists[label] = {
            "grant": obs.metrics.histogram("grant_latency_s").summary(),
            "batch": obs.metrics.histogram("shuffle_batch_s").summary(),
        }
    return (ds, wall, exchange, frames, modeled, steal_wall, steal_counts,
            native_wall, native_steals, recovery_wall, recovery_reclaims,
            obs_wall, obs_hists)


def _throughput(exchange, label, n):
    """Exchange bytes/second: network-destined bytes over bin time."""
    nbytes, seconds = exchange[(label, n)]
    return nbytes / max(seconds, 1e-9)


def _pct(summary, key):
    """One histogram percentile as a milliseconds column ('-' if empty)."""
    if summary is None or summary["count"] == 0:
        return "-"
    return f"{summary[key] * 1e3:.2f}"


def _render(ds, wall, exchange, frames, modeled, steal_wall, steal_counts,
            native_wall, native_steals, recovery_wall, recovery_reclaims,
            obs_wall, obs_hists):
    def speedup(label, n):
        return wall[(label, 1)] / wall[(label, n)]

    lines = [
        f"backend scaling — SIO, {ds.n_elements:,d} elements, "
        f"{ds.n_chunks} chunks (wall-clock vs sim-predicted speedup)",
        f"{'n':>3} {'serial_ms':>10} {'lpickle_ms':>11} {'local_ms':>10} "
        f"{'cluster_ms':>11} {'local_x':>8} {'cluster_x':>10} {'sim_x':>7}",
    ]
    for n in WORKER_COUNTS:
        lines.append(
            f"{n:>3} "
            f"{wall[('serial', n)] * 1e3:>10.1f} "
            f"{wall[('local/pickle', n)] * 1e3:>11.1f} "
            f"{wall[('local', n)] * 1e3:>10.1f} "
            f"{wall[('cluster', n)] * 1e3:>11.1f} "
            f"{speedup('local', n):>8.2f} "
            f"{speedup('cluster', n):>10.2f} "
            f"{modeled[1] / modeled[n]:>7.2f}"
        )
    lines += [
        "",
        "exchange throughput — network-destined shuffle MB per second of "
        "exposed bin time; frames/batch = coalesced wire frames per "
        "(src, dst) cluster batch",
        f"{'n':>3} {'lpickle_MBps':>13} {'local_MBps':>11} "
        f"{'cluster_MBps':>13} {'frames/batch':>13}",
    ]
    for n in WORKER_COUNTS[1:]:  # n=1 shuffles nothing over the fabric
        n_batches = n * (n - 1)
        lines.append(
            f"{n:>3} "
            f"{_throughput(exchange, 'local/pickle', n) / 1e6:>13.1f} "
            f"{_throughput(exchange, 'local', n) / 1e6:>11.1f} "
            f"{_throughput(exchange, 'cluster', n) / 1e6:>13.1f} "
            f"{frames[('cluster', n)] / n_batches:>13.1f}"
        )
    lines += [
        "",
        "load-balanced — single placement, stealing on: replayed = "
        "sim-recorded schedule re-executed; native = ranks pull chunks "
        "from the driver's service and steal at runtime (both "
        "bit-validated vs the sim)",
        f"{'n':>3} {'steals':>7} {'serial_ms':>10} {'local_ms':>10} "
        f"{'cluster_ms':>11} {'nat_steals(s/l/c)':>18} {'serial_nat':>11} "
        f"{'local_nat':>10} {'cluster_nat':>12}",
    ]
    for n in WORKER_COUNTS:
        # Each backend decides its own native schedule; report all
        # three steal counts, not just one standing in for the row.
        nat = "/".join(
            str(native_steals[(label, n)])
            for label in ("serial", "local", "cluster")
        )
        lines.append(
            f"{n:>3} "
            f"{steal_counts[n]:>7d} "
            f"{steal_wall[('serial', n)] * 1e3:>10.1f} "
            f"{steal_wall[('local', n)] * 1e3:>10.1f} "
            f"{steal_wall[('cluster', n)] * 1e3:>11.1f} "
            f"{nat:>18} "
            f"{native_wall[('serial', n)] * 1e3:>11.1f} "
            f"{native_wall[('local', n)] * 1e3:>10.1f} "
            f"{native_wall[('cluster', n)] * 1e3:>12.1f}"
        )
    n_fault = max(WORKER_COUNTS)
    lines += [
        "",
        "killed-rank recovery — rank 1 SIGKILLed at its 2nd grant, "
        "reclaimed + respawned mid-job; output stays bit-identical to "
        "the failure-free run",
        f"{'n':>3} {'local_ms':>10} {'local_rec_ms':>13} "
        f"{'cluster_ms':>11} {'cluster_rec_ms':>15} {'reclaims(l/c)':>14}",
        (
            f"{n_fault:>3} "
            f"{wall[('local', n_fault)] * 1e3:>10.1f} "
            f"{recovery_wall['local'] * 1e3:>13.1f} "
            f"{wall[('cluster', n_fault)] * 1e3:>11.1f} "
            f"{recovery_wall['cluster'] * 1e3:>15.1f} "
            + (
                f"{recovery_reclaims['local']}/"
                f"{recovery_reclaims['cluster']}"
            ).rjust(14)
        ),
    ]
    lines += [
        "",
        f"observability — traced run at n={n_fault}: grant round-trip and "
        "shuffle-batch latency p50/p99 (ms) from the run's metrics "
        "registry, and tracing overhead vs the untraced run "
        "(<5% target; advisory in smoke mode)",
        f"{'backend':>8} {'grant_p50':>10} {'grant_p99':>10} "
        f"{'batch_p50':>10} {'batch_p99':>10} {'untraced_ms':>12} "
        f"{'traced_ms':>10} {'overhead':>9}",
    ]
    for label in ("serial", "local", "cluster"):
        base = wall[(label, n_fault)]
        overhead = (obs_wall[label] - base) / base
        lines.append(
            f"{label:>8} "
            f"{_pct(obs_hists[label]['grant'], 'p50'):>10} "
            f"{_pct(obs_hists[label]['grant'], 'p99'):>10} "
            f"{_pct(obs_hists[label]['batch'], 'p50'):>10} "
            f"{_pct(obs_hists[label]['batch'], 'p99'):>10} "
            f"{base * 1e3:>12.1f} "
            f"{obs_wall[label] * 1e3:>10.1f} "
            f"{overhead:>+8.1%}"
        )
    return "\n".join(lines)


def test_backend_scaling(benchmark, save_result, check):
    (ds, wall, exchange, frames, modeled, steal_wall, steal_counts,
     native_wall, native_steals, recovery_wall, recovery_reclaims,
     obs_wall, obs_hists) = benchmark.pedantic(
        _measure, rounds=1, iterations=1
    )
    save_result(
        "backend_scaling",
        _render(ds, wall, exchange, frames, modeled, steal_wall,
                steal_counts, native_wall, native_steals, recovery_wall,
                recovery_reclaims, obs_wall, obs_hists),
    )

    local_x = wall[("local", 1)] / wall[("local", 4)]
    cluster_x = wall[("cluster", 1)] / wall[("cluster", 4)]
    sim_x = modeled[1] / modeled[4]
    shm_bps = _throughput(exchange, "local", 4)
    pickle_bps = _throughput(exchange, "local/pickle", 4)
    benchmark.extra_info.update(
        {
            "local_speedup_4": round(local_x, 3),
            "cluster_speedup_4": round(cluster_x, 3),
            "sim_predicted_speedup_4": round(sim_x, 3),
            "local_shm_exchange_MBps_4": round(shm_bps / 1e6, 1),
            "local_pickle_exchange_MBps_4": round(pickle_bps / 1e6, 1),
            "cluster_frames_per_batch_4": round(
                frames[("cluster", 4)] / 12, 1
            ),
            "local_native_steals_4": native_steals[("local", 4)],
            "local_recovery_ms_4": round(recovery_wall["local"] * 1e3, 1),
            "cluster_recovery_ms_4": round(
                recovery_wall["cluster"] * 1e3, 1
            ),
        }
    )

    # The sim predicts real strong scaling for SIO at 4 workers...
    check(sim_x > 1.2, "sim predicts SIO strong-scales to 4 workers")
    # ...and with >= 4 real cores the parallel backends must realise
    # some of it (process + socket overheads bound how much).  On
    # fewer cores there is no parallelism to find, so the speedup rows
    # are reported but not asserted.
    if _cores() >= 4:
        check(local_x > 1.1, "local backend shows measurable 4-worker speedup")
        check(
            cluster_x > 1.05, "cluster backend shows measurable 4-worker speedup"
        )
        # The point of the zero-copy exchange: moving a shuffle byte
        # through shared memory beats pickling it through a pipe.
        check(
            shm_bps > pickle_bps,
            "shared-memory exchange beats pickle-over-queue bytes/s",
        )
    # The wire costs something, but not an order of magnitude vs pipes.
    check(
        wall[("cluster", 4)] < 10 * wall[("local", 4)],
        "socket shuffle stays within 10x of pipe shuffle",
    )
    # Serial has no parallelism to find: its sweep stays roughly flat.
    check(
        wall[("serial", 4)] < 2.0 * wall[("serial", 1)],
        "serial wall time is ~independent of n_workers",
    )
    # The load-balanced rows exist and actually balanced something: at
    # 4 workers the single-rank placement forces the other three ranks
    # to steal, and replaying that schedule costs the same order of
    # wall-clock as the pinned run (it moves the same bytes).
    check(steal_counts[4] > 0, "sim schedule at n=4 contains steals")
    check(
        steal_wall[("local", 4)] < 10 * wall[("local", 4)],
        "replayed steal schedule stays within 10x of the pinned run",
    )
    # Native stealing really happened (idle ranks pulled work from the
    # single loaded rank at runtime) and costs the same order of
    # wall-clock as replaying a sim-recorded schedule.
    check(
        native_steals[("local", 4)] > 0,
        "local backend steals natively from a single placement",
    )
    check(
        native_wall[("local", 4)] < 10 * steal_wall[("local", 4)],
        "native stealing stays within 10x of the replayed schedule",
    )
    # The kill really happened and the recovery path really ran —
    # chunks were reclaimed on both real backends — and surviving it
    # costs the same order of wall-clock as the failure-free run
    # (one respawned process + a re-executed map phase, not a rerun).
    check(
        recovery_reclaims["local"] > 0 and recovery_reclaims["cluster"] > 0,
        "killed rank's chunks were reclaimed on both real backends",
    )
    check(
        recovery_wall["local"] < 20 * wall[("local", 4)],
        "local kill recovery stays within 20x of the failure-free run",
    )
    # Batch coalescing keeps the cluster exchange's frame count low:
    # each (src, dst) batch of many small parts rides few DATA frames.
    check(
        frames[("cluster", 4)] / 12 < 64,
        "coalescing keeps cluster frames-per-batch small",
    )
    # The traced runs actually metered their hot paths: every granted
    # chunk's round-trip landed in the latency histogram, and the
    # process backends timed their shuffle batches.
    check(
        obs_hists["cluster"]["grant"]["count"] >= ds.n_chunks,
        "traced cluster run metered every grant round-trip",
    )
    check(
        obs_hists["local"]["batch"]["count"] > 0,
        "traced local run metered its shuffle batches",
    )
    benchmark.extra_info["tracing_overhead_local_4"] = round(
        (obs_wall["local"] - wall[("local", 4)]) / wall[("local", 4)], 3
    )
    # The <5% overhead target is only meaningful at real payload sizes;
    # smoke-mode runs are startup-dominated, so bound it loosely there.
    if not bench_smoke_enabled():
        check(
            obs_wall["local"] < 1.05 * wall[("local", 4)],
            "tracing overhead on the local backend stays under 5%",
        )

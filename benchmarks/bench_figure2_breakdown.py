"""Figure 2: runtime percentage breakdowns at 1, 8, and 64 GPUs.

Paper's qualitative content, asserted here:
* MM is map-dominated at every scale;
* SIO is sort-heavy at 1 GPU and communication-heavy at 64;
* the GPMR-internal/scheduler share grows with GPU count for the
  communication-light jobs (LR);
* KMC and LR are map-dominated at 1 GPU.
"""

from repro.harness import figure2


def test_figure2_runtime_breakdowns(benchmark, save_result, check):
    result = benchmark.pedantic(figure2, rounds=1, iterations=1)
    save_result("figure2_breakdown", result.render())

    f = result.fraction

    # MM: compute-bound at every scale.
    for g in (1, 8, 64):
        check(f("MM", g, "map") > 0.55, f"MM at {g} GPUs should be map-bound")

    # SIO at 1 GPU: the sort (including out-of-core merge passes)
    # dominates; at 64 GPUs the bottleneck moves to data movement
    # (exposed binning + receive waiting), not sort.
    check(f("SIO", 1, "sort") > 0.3, "SIO at 1 GPU should be sort-heavy")
    sio_comm_64 = f("SIO", 64, "bin") + f("SIO", 64, "scheduler")
    check(sio_comm_64 > f("SIO", 64, "sort"), "SIO at 64 GPUs is comm-bound")
    check(sio_comm_64 > 0.3, "SIO at 64 GPUs is comm-bound")

    # KMC and LR: map-dominated on one GPU.
    check(f("KMC", 1, "map") > 0.8, "KMC at 1 GPU should be map-bound")
    check(f("LR", 1, "map") > 0.8, "LR at 1 GPU should be map-bound")

    # LR: the internal/scheduler share grows as per-GPU work shrinks.
    check(f("LR", 64, "scheduler") > f("LR", 1, "scheduler"),
          "LR scheduler share grows with GPU count")
    check(f("LR", 64, "scheduler") > 0.1, "LR scheduler share at 64 GPUs")

    # Fractions are proper distributions.
    for (app, g), frac in result.breakdowns.items():
        assert abs(sum(frac.values()) - 1.0) < 1e-9, (app, g)

"""Ablation A3: chunk-size trade-off (paper Sections 3 and 7).

"We can use chunks that are a fraction of the size of available
memory, allowing us to Map or Reduce a chunk while simultaneously
streaming another chunk" — but chunks too small drown in per-chunk
overhead, and chunks too large starve the double buffer and the load
balancer.  The sweep should show a sweet spot in the middle.
"""

from repro.harness import ablation_chunk_size


def test_chunk_size_ablation(benchmark, save_result, check):
    result = benchmark.pedantic(ablation_chunk_size, rounds=1, iterations=1)
    save_result("ablation_chunksize", result.render())

    f = result.findings
    benchmark.extra_info.update({k: round(v, 4) for k, v in f.items()})

    times = [f["chunk_1M"], f["chunk_4M"], f["chunk_16M"], f["chunk_64M"]]
    best = min(times)

    # The paper's claim: chunks must be a small fraction of the per-GPU
    # share so streaming overlap works.  Whole-share chunks (64M ints =
    # the full 2-chunk split at 8 GPUs) forfeit the double buffer and
    # the bin/map overlap:
    check(f["chunk_64M"] > 2 * best, "whole-share chunks must lose badly")
    check(f["chunk_16M"] > f["chunk_1M"], "fewer chunks -> less overlap")

    # Small-to-mid chunks are all competitive (per-chunk overheads are
    # microseconds against megabyte transfers).
    check(f["chunk_4M"] < 1.5 * best, "small-to-mid chunks competitive")

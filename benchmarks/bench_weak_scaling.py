"""Weak scaling (Table 1's second dataset set; extension experiment).

Per-GPU input held constant across the GPU sweep.  The paper's
conclusion (§7) predicts: accumulation jobs (WO, KMC) weak-scale well —
"out-of-core work does not have a strong effect on GPMR jobs" — while
all-to-all SIO degrades as the shuffled volume grows with the cluster.
"""

from repro.harness.weak_scaling import weak_scaling


def test_weak_scaling(benchmark, save_result, check):
    result = benchmark.pedantic(weak_scaling, rounds=1, iterations=1)
    save_result("weak_scaling", result.render())

    wo = result.curves["WO"]
    kmc = result.curves["KMC"]
    sio = result.curves["SIO"]
    lr = result.curves["LR"]

    benchmark.extra_info.update(
        {f"{app}_eff32": round(c.efficiency_at(32), 3) for app, c in result.curves.items()}
    )

    # Accumulation jobs hold weak efficiency at 32 GPUs.
    check(wo.efficiency_at(32) > 0.7, "WO weak-scales")
    check(kmc.efficiency_at(32) > 0.7, "KMC weak-scales")

    # SIO's all-to-all shuffle degrades with cluster size.
    check(sio.efficiency_at(32) < 0.6, "SIO weak efficiency degrades")
    check(sio.efficiency_at(32) < kmc.efficiency_at(32), "SIO below KMC")

    # LR sits between: h2d streams weak-scale, the single reducer and
    # fixed overheads erode a little.
    check(lr.efficiency_at(32) > 0.5, "LR holds moderate weak efficiency")

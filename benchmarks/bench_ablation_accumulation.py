"""Ablation A1: the importance of Accumulation (paper Section 6).

"We saw dramatically worse performance in KMC, LR, and especially WO
before implementing Accumulation; before this addition, all three had
similar characteristics to SIO (which cannot compact intermediate
data well)."
"""

from repro.harness import ablation_accumulation


def test_accumulation_ablation(benchmark, save_result, check):
    result = benchmark.pedantic(
        ablation_accumulation, rounds=1, iterations=1
    )
    save_result("ablation_accumulation", result.render())

    f = result.findings
    benchmark.extra_info.update({k: round(v, 2) for k, v in f.items()})

    # Removing accumulation hurts every job substantially.
    check(f["wo_slowdown"] > 1.5, "WO must degrade without accumulation")
    check(f["kmc_slowdown"] > 2.0, "KMC must degrade without accumulation")
    check(f["lr_slowdown"] > 2.0, "LR must degrade without accumulation")

    # KMC's map alone was "almost 8x" slower in the paper; end-to-end
    # slowdowns of the same order, not orders of magnitude beyond.
    check(f["kmc_slowdown"] < 40, "KMC slowdown stays same-order")
    check(f["lr_slowdown"] < 60, "LR slowdown stays same-order")

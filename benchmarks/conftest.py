"""Shared fixtures for the paper-reproduction benches.

Each bench regenerates one table or figure, asserts the paper's *shape*
(who wins, by roughly what factor, where crossovers fall), writes the
rendered rows to ``results/<name>.txt``, and registers wall-time with
pytest-benchmark.

Smoke mode — ``REPRO_BENCH_SMOKE=1`` — is the CI rot guard: the
harness shrinks every dataset to a tiny functional payload (see
:func:`repro.harness.sample_target`), every bench still executes its
full code path, and the paper-shape assertions (made through the
``check`` fixture) are evaluated but only *warn* on failure, because
the paper's quantitative shapes are not expected to survive toy sizes.
"""

from __future__ import annotations

import warnings
from pathlib import Path

import pytest

from repro.harness import bench_smoke_enabled

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: Fast mode: tiny datasets, advisory shape checks (set by CI).  The
#: same predicate drives the harness's dataset shrinking, so sizes and
#: assertion strictness can never disagree.
SMOKE = bench_smoke_enabled()


class BenchShapeWarning(UserWarning):
    """A paper-shape assertion that did not hold in smoke mode."""


@pytest.fixture
def check():
    """Assert a paper-shape condition; advisory under smoke mode.

    Usage: ``check(f("MM", 1, "map") > 0.55, "MM should be map-bound")``.
    """

    def _check(condition: bool, message: str = "paper-shape check") -> None:
        if SMOKE:
            if not condition:
                warnings.warn(f"[smoke] {message}", BenchShapeWarning, stacklevel=2)
            return
        assert condition, message

    return _check


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_result(results_dir):
    """Write a rendered harness result to results/<name>.txt (and echo)."""

    def _save(name: str, text: str) -> None:
        suffix = "_smoke" if SMOKE else ""
        path = results_dir / f"{name}{suffix}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save

"""Shared fixtures for the paper-reproduction benches.

Each bench regenerates one table or figure, asserts the paper's *shape*
(who wins, by roughly what factor, where crossovers fall), writes the
rendered rows to ``results/<name>.txt``, and registers wall-time with
pytest-benchmark.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_result(results_dir):
    """Write a rendered harness result to results/<name>.txt (and echo)."""

    def _save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save

"""Ablation A4: WO reduce kernel — warp-per-key vs thread-per-key.

"We changed our implementation to assign each key to a warp (not a
block) ... The overall effect was that our reduction times were
reduced (by an order of magnitude in some cases) down to less than
3 ms."
"""

from repro.harness import ablation_wo_reduce


def test_wo_reduce_ablation(benchmark, save_result, check):
    result = benchmark.pedantic(ablation_wo_reduce, rounds=1, iterations=1)
    save_result("ablation_wo_reduce", result.render())

    f = result.findings
    benchmark.extra_info.update({k: round(v, 6) for k, v in f.items()})

    # Order-of-magnitude kernel-level gap.
    check(f["kernel_speedup"] > 5, "warp-per-key should win by ~10x")

    # "down to less than 3 ms" for the warp variant.
    check(f["warp_kernel_s"] < 0.003, "warp reduce under 3 ms")

    # The full job barely notices (reduce is a tiny share of WO).
    check(f["job_speedup"] < 1.5, "full job barely notices reduce kernel")

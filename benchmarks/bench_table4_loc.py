"""Table 4: lines of source code per benchmark implementation.

The paper's point: MapReduce abstractions keep application code small
(a few hundred lines), with GPMR's WO largest "because of the hashing
required".  We count this repo's app modules the same way (non-blank,
non-comment, non-docstring lines) and print them beside the paper's
numbers.
"""

from repro.harness import table4


def test_table4_loc(benchmark, save_result):
    result = benchmark.pedantic(table4, rounds=1, iterations=1)
    save_result("table4_loc", result.render())

    ours = result.ours
    benchmark.extra_info.update(ours)

    # Same order of magnitude as the paper's GPMR implementations:
    # a few hundred lines per benchmark, not thousands.
    for app in ("MM", "KMC", "WO"):
        assert 50 <= ours[app] <= 600, f"{app} LoC {ours[app]} out of range"

    # All five apps are counted.
    assert set(ours) == {"MM", "KMC", "WO", "SIO", "LR"}

"""Table 2: GPMR speedup over Phoenix (1 and 4 GPUs, one node).

Paper values: MM 162.7/559.2, KMC 2.99/11.73, LR 1.30/4.09,
SIO 1.45/2.32, WO 11.08/18.44.

Shape assertions (not absolute parity — see EXPERIMENTS.md):
* GPMR beats Phoenix on every benchmark at 1 GPU;
* MM's speedup is orders of magnitude above the others;
* WO and KMC sit well above SIO and LR;
* 4-GPU speedups exceed 1-GPU speedups everywhere.
"""

from repro.harness import PAPER_TABLE2, table2


def test_table2_phoenix_speedups(benchmark, save_result, check):
    result = benchmark.pedantic(table2, rounds=1, iterations=1)
    save_result("table2_phoenix", result.render())

    s1 = {app: result.speedups(app)[0] for app in PAPER_TABLE2}
    s4 = {app: result.speedups(app)[1] for app in PAPER_TABLE2}
    benchmark.extra_info.update({f"{a}_1gpu": round(v, 2) for a, v in s1.items()})

    # GPMR wins everywhere at a single GPU.
    for app, speedup in s1.items():
        check(speedup > 1.0, f"{app}: GPMR should beat Phoenix ({speedup:.2f}x)")

    # MM is in a different class (paper: 162x).
    check(s1["MM"] > 50, "MM speedup is orders of magnitude")
    check(s1["MM"] > 10 * max(s1["KMC"], s1["WO"], s1["SIO"], s1["LR"]),
          "MM dominates the other speedups")

    # Compute-light jobs barely win (paper: LR 1.30, SIO 1.45).
    check(s1["LR"] < 3, "LR barely beats Phoenix")
    check(s1["SIO"] < 4, "SIO barely beats Phoenix")

    # WO and KMC benefit strongly from accumulation (paper: 11.1, 3.0).
    check(s1["WO"] > s1["SIO"], "WO above SIO")
    check(s1["KMC"] > s1["SIO"], "KMC above SIO")

    # Four GPUs extend the lead on every benchmark.
    for app in PAPER_TABLE2:
        check(s4[app] > s1[app], f"{app}: 4-GPU speedup should exceed 1-GPU")

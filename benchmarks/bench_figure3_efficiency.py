"""Figure 3: parallel efficiency curves for all five benchmarks.

Paper's qualitative content, asserted per panel:
* **MM** is the scaling yardstick: the largest size (16384^2) keeps
  high efficiency to 64 GPUs; smaller sizes fall off earlier.
* **SIO** shows super-linear speedup at 4 GPUs (the pair set fits
  in-core, skipping the out-of-core sort) and collapses at 64.
* **WO** scales well for the largest input; small inputs collapse.
* **KMC** stops strong-scaling around ~20 GPUs but stays >= 55-60 %
  at 64 for the biggest input.
* **LR** scales poorly beyond 4 GPUs (h2d-bound, tiny map).
"""

from repro.harness import figure3


def test_figure3_parallel_efficiency(benchmark, save_result, check):
    result = benchmark.pedantic(figure3, rounds=1, iterations=1)
    save_result("figure3_efficiency", result.render())

    # --- MM ---------------------------------------------------------------
    mm_big = result.curve("MM", 16384)
    check(mm_big.efficiency_at(64) > 0.75, "16384^2 MM must scale near-perfectly")
    mm_small = result.curve("MM", 2048)
    check(mm_small.efficiency_at(64) < mm_big.efficiency_at(64) - 0.2,
          "small MM should fall off earlier than large MM")

    # --- SIO --------------------------------------------------------------
    sio_big = result.curve("SIO", 128 << 20)
    check(sio_big.efficiency_at(4) > 1.05,
          "SIO at 4 GPUs should be super-linear (data fits in core)")
    check(sio_big.efficiency_at(64) < 0.35, "SIO must collapse at scale")

    # --- WO ---------------------------------------------------------------
    wo_big = result.curve("WO", 512 << 20)
    wo_small = result.curve("WO", 1 << 20)
    check(wo_big.efficiency_at(64) > 0.4, "large WO keeps scaling")
    check(wo_small.efficiency_at(64) < 0.2, "1M-element WO cannot use 64 GPUs")

    # --- KMC --------------------------------------------------------------
    kmc_big = result.curve("KMC", 512 << 20)
    check(kmc_big.efficiency_at(4) > 0.9, "KMC scales well to 4 GPUs")
    check(kmc_big.efficiency_at(64) > 0.55, "paper: >60% at 64 GPUs")
    check(kmc_big.efficiency_at(64) < kmc_big.efficiency_at(16),
          "strong scaling stops before 64 GPUs")

    # --- LR ---------------------------------------------------------------
    lr_big = result.curve("LR", 512 << 20)
    check(lr_big.efficiency_at(64) < lr_big.efficiency_at(4) - 0.1,
          "LR scales poorly beyond a few GPUs")
    check(lr_big.efficiency_at(64) < 0.45, "LR efficiency collapses at 64")

    # Efficiency at one GPU is 1.0 by definition, everywhere.
    for app, curves in result.curves.items():
        for curve in curves:
            assert abs(curve.efficiency_at(1) - 1.0) < 1e-9, (app, curve.size)

    benchmark.extra_info.update(
        {
            "mm16384_eff64": round(mm_big.efficiency_at(64), 3),
            "sio128M_eff4": round(sio_big.efficiency_at(4), 3),
            "kmc512M_eff64": round(kmc_big.efficiency_at(64), 3),
            "lr512M_eff64": round(lr_big.efficiency_at(64), 3),
            "wo512M_eff64": round(wo_big.efficiency_at(64), 3),
        }
    )

"""Table 3: GPMR speedup over Mars (largest Mars-in-core problems).

Paper values: MM 2.70/10.76, KMC 37.3/129.4, WO 3.10/11.71.

Shape assertions:
* GPMR beats Mars on all three benchmarks;
* KMC shows the largest gap (Mars materialises and bitonic-sorts one
  pair per point; GPMR accumulates);
* the ordering KMC > WO and KMC > MM holds;
* 4 GPUs multiply the lead roughly linearly (Mars cannot scale past 1).
"""

from repro.harness import PAPER_TABLE3, table3


def test_table3_mars_speedups(benchmark, save_result, check):
    result = benchmark.pedantic(table3, rounds=1, iterations=1)
    save_result("table3_mars", result.render())

    s1 = {app: result.speedups(app)[0] for app in PAPER_TABLE3}
    s4 = {app: result.speedups(app)[1] for app in PAPER_TABLE3}
    benchmark.extra_info.update({f"{a}_1gpu": round(v, 2) for a, v in s1.items()})

    for app, speedup in s1.items():
        check(speedup > 1.0, f"{app}: GPMR should beat Mars ({speedup:.2f}x)")

    # KMC dominates (paper 37x): accumulation vs sort-everything.
    check(s1["KMC"] > 10, "KMC dominates Mars")
    check(s1["KMC"] > s1["MM"], "KMC gap exceeds MM gap")

    # Multi-GPU multiplies the lead (Mars is single-GPU only).
    for app in PAPER_TABLE3:
        check(s4[app] > 2 * s1[app],
              f"{app}: 4-GPU advantage should grow (Mars cannot use >1 GPU)")


def test_table3_sizes_are_mars_in_core_limits(benchmark):
    """The Table-3 inputs must actually satisfy Mars's memory check."""
    from repro.baselines import MarsModel
    from repro.harness import TABLE3_SIZES, dataset_for
    from repro.apps import kmc_mars_workload, mm_mars_workload, wo_mars_workload

    mars = MarsModel()
    workload_of = {
        "MM": mm_mars_workload,
        "KMC": kmc_mars_workload,
        "WO": wo_mars_workload,
    }

    def verify_in_core():
        for app, size in TABLE3_SIZES.items():
            ds = dataset_for(app, size, seed=0)
            mars.check_in_core(workload_of[app](ds))  # must not raise
        return True

    assert benchmark.pedantic(verify_in_core, rounds=1, iterations=1)

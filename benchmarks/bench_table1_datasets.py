"""Table 1: dataset sizes — and generator throughput sanity.

Table 1 is configuration, not measurement; this bench renders it and
times the workload generators at representative sizes so dataset
construction cost is tracked over time.
"""

from repro.harness import dataset_for, sample_factor_for, table1


def test_table1_render(benchmark, save_result):
    result = benchmark.pedantic(table1, rounds=1, iterations=1)
    save_result("table1_datasets", result.render())
    assert len(result.rows) == 3


def test_table1_generators_materialise(benchmark):
    """Every app's dataset builds and yields its first chunk."""

    def build_all():
        sizes = {"MM": 4096, "SIO": 32 << 20, "WO": 64 << 20,
                 "KMC": 32 << 20, "LR": 64 << 20}
        out = {}
        for app, size in sizes.items():
            ds = dataset_for(app, size, seed=1)
            chunk = ds.chunk(0)
            out[app] = (ds.n_chunks, chunk.actual_items)
        return out

    info = benchmark.pedantic(build_all, rounds=1, iterations=1)
    for app, (n_chunks, actual) in info.items():
        assert n_chunks >= 1
        assert actual >= 1
        # Sampling keeps the functional payload tractable.
        assert sample_factor_for(app, 4096 if app == "MM" else 32 << 20) >= 1

"""Ablation A2: SIO pipeline configurations (paper Section 5.3.2).

"We forego Partial Reduction and Accumulation as they yield no speedup
with our intermediate data, and we skip Combine as it causes slowdown."
Sparse uniform keys barely repeat inside a chunk, so the combining
substages add GPU time without removing transfer volume.
"""

from repro.harness import ablation_sio_pipeline


def test_sio_pipeline_ablation(benchmark, save_result, check):
    result = benchmark.pedantic(
        ablation_sio_pipeline, rounds=1, iterations=1
    )
    save_result("ablation_sio_pipeline", result.render())

    f = result.findings
    benchmark.extra_info.update({k: round(v, 4) for k, v in f.items()})

    # The plain pipeline is the right choice (paper's conclusion):
    # partial reduction yields no speedup...
    check(f["partial_reduce"] >= f["plain"] * 0.98, "partial reduce: no speedup")
    # ...and combine causes a slowdown.
    check(f["combine"] > f["plain"] * 1.05, "combine causes slowdown")

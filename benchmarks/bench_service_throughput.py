"""Job-service throughput: what the resident daemon actually buys.

Three measurements against one in-process :class:`JobService` on the
local (real multiprocessing) backend:

* **cold vs warm latency** — p50 submit-to-result over an open
  connection to the warm daemon, next to the true cold-start
  alternative: a fresh driver process that imports the stack and runs
  the same job once via ``run_app``.  The gap is the amortized
  interpreter/import/tracker/executor cost the service exists to
  remove.
* **jobs/sec vs concurrent clients** — the loadgen sweep: N clients
  pipelining a mixed SIO/WO/LR workload through the shared
  chunk-authority scheduler, with p50/p99 latency from the same
  histogram instrument the runtime uses.
* **cache-hit vs miss ingest** — dataset acquisition time for the
  first submission of a spec (factory build) against a repeat
  submission (LRU hit).

Smoke mode keeps the same code paths with the standard tiny-payload
sizes; throughput shapes are advisory there (worker spawn dominates
toy jobs).
"""

import os
import subprocess
import sys
import time

from repro.harness import bench_smoke_enabled
from repro.service import JobService, ServiceClient
from repro.service.loadgen import run_load

SMOKE = bench_smoke_enabled()

CLIENT_COUNTS = (1, 2, 4) if SMOKE else (1, 2, 4, 8)
JOBS_PER_CLIENT = 3 if SMOKE else 6
N_GPUS = 2

_SCALE = 1 if SMOKE else 16
MIX = (
    ("SIO", {"n_elements": 6000 * _SCALE, "chunk_elements": 1500 * _SCALE,
             "key_space": 512, "seed": 31}),
    ("WO", {"n_chars": 4000 * _SCALE, "chunk_chars": 1000 * _SCALE,
            "seed": 32}),
    ("LR", {"n_points": 4000 * _SCALE, "chunk_points": 1000 * _SCALE,
            "seed": 33}),
)


def _cold_start_seconds(app, spec, runs=3):
    """Wall-clock of a fresh one-shot driver process, per run."""
    script = (
        "from repro.apps import APPS\n"
        f"entry = APPS[{app!r}]\n"
        f"entry.runner({N_GPUS}, entry.dataset(**{spec!r}), backend='local')\n"
    )
    src_dir = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src_dir, env.get("PYTHONPATH", "")) if p
    )
    samples = []
    for _ in range(runs):
        t0 = time.perf_counter()
        subprocess.run([sys.executable, "-c", script], check=True, env=env,
                       timeout=300)
        samples.append(time.perf_counter() - t0)
    return samples


def test_service_throughput(benchmark, check, save_result):
    lines = ["service throughput (local backend, daemon-resident pools)", ""]
    with JobService(port=0, default_backend="local",
                    max_concurrent_jobs=4) as service:
        app, spec = MIX[0]

        # -- cold vs warm ------------------------------------------------
        with ServiceClient(*service.address) as client:
            client.submit(app, spec, n_gpus=N_GPUS, timeout=300)  # prime
            warm = []
            for _ in range(5):
                t0 = time.perf_counter()
                client.submit(app, spec, n_gpus=N_GPUS, timeout=300)
                warm.append(time.perf_counter() - t0)
        cold = _cold_start_seconds(app, spec)
        warm_p50 = sorted(warm)[len(warm) // 2]
        cold_p50 = sorted(cold)[len(cold) // 2]
        lines += [
            "cold-start run_app vs warm service submit (SIO, p50 seconds):",
            f"  cold-start driver   {cold_p50:8.3f}",
            f"  warm submit         {warm_p50:8.3f}",
            f"  speedup             {cold_p50 / warm_p50:8.2f}x",
            "",
        ]
        check(warm_p50 < cold_p50,
              "warm service submit should beat cold-start run_app")

        # -- jobs/sec vs concurrent clients ------------------------------
        lines.append("jobs/sec vs concurrent clients "
                     f"({JOBS_PER_CLIENT} jobs each, mixed SIO/WO/LR):")
        lines.append("  clients   jobs/sec   p50 s    p99 s   failed")
        throughputs = {}
        for n in CLIENT_COUNTS:
            report = run_load(service.address, n_clients=n,
                              jobs_per_client=JOBS_PER_CLIENT,
                              mix=MIX, n_gpus=N_GPUS)
            s = report.latency.summary()
            throughputs[n] = report.jobs_per_sec
            lines.append(
                f"  {n:7d}   {report.jobs_per_sec:8.2f}   "
                f"{s['p50']:6.3f}   {s['p99']:6.3f}   {report.failed:6d}"
            )
            assert report.failed == 0, report.errors
        lines.append("")
        check(throughputs[max(CLIENT_COUNTS)] >= throughputs[1],
              "concurrent clients should not reduce aggregate jobs/sec")

        # -- cache hit vs miss ingest ------------------------------------
        big_spec = {"n_elements": 50_000 * _SCALE,
                    "chunk_elements": 12_500 * _SCALE,
                    "key_space": 2048, "seed": 99}
        with ServiceClient(*service.address) as client:
            miss = client.submit("SIO", big_spec, n_gpus=N_GPUS, timeout=300)
            hit = client.submit("SIO", big_spec, n_gpus=N_GPUS, timeout=300)
        lines += [
            "dataset ingest, cache miss vs hit (seconds):",
            f"  miss (factory build)  {miss.ingest_s:10.6f}",
            f"  hit  (LRU reuse)      {hit.ingest_s:10.6f}",
            "",
        ]
        assert miss.cache_hit is False and hit.cache_hit is True
        check(hit.ingest_s <= miss.ingest_s,
              "cache hit ingest should not exceed the miss's build time")

        # Register one representative warm submit with pytest-benchmark.
        with ServiceClient(*service.address) as client:
            benchmark(lambda: client.submit(app, spec, n_gpus=N_GPUS,
                                            timeout=300))

    save_result("service_throughput", "\n".join(lines))

"""Fused map+partial-reduce kernels vs the staged pipeline.

The acceleration layer's value proposition, measured: fusing map with
partial reduce keeps the per-rank table resident instead of streaming
a pair per input element, so the bytes handed to the exchange collapse
for KMC/WO/LR, and SIO's per-chunk combine merges like keys before the
shuffle.  On the numpy tier nothing crosses device→host (parts are
born on host) — the crossing counter must read zero.
"""

from repro.harness import accel_kernels


def test_accel_kernels(benchmark, save_result, check):
    result = benchmark.pedantic(accel_kernels, rounds=1, iterations=1)
    save_result("accel_kernels", result.render())

    f = result.findings
    benchmark.extra_info.update({k: round(v, 2) for k, v in f.items()})

    # The headline: fused KMC/WO emit one resident table instead of a
    # pair stream — orders of magnitude fewer exchange bytes.
    check(f["kmc_emission_reduction"] > 4,
          "fused KMC must emit far fewer bytes than the raw port")
    check(f["wo_emission_reduction"] > 4,
          "fused WO must emit far fewer bytes than the raw port")
    # SIO's per-chunk combine merges duplicate keys before the shuffle
    # (the bench key space is chosen dense enough to have some).
    check(f["sio_emission_reduction"] > 1.0,
          "fused SIO must compact duplicate keys per chunk")
    # MM's fused kernel is a data-movement restructure, not a
    # compaction: emission volume is unchanged.
    check(0.99 <= f["mm_p1_emission_reduction"] <= 1.01,
          "fused MM emits the same partial tiles")
    # numpy tier: parts are born on host, the one-crossing counter
    # must not move.
    for key, value in f.items():
        if key.endswith("_d2h_bytes"):
            check(value == 0.0, f"{key} must be zero on the numpy tier")

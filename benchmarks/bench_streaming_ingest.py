"""Out-of-core streaming ingest: bounded driver RSS + grant prefetch.

Two claims, one bench:

* **Bounded driver memory.**  A streamed dataset (``repro.workloads.
  streamed``) hands the chunk service *descriptors* — ``(reader key,
  chunk index)`` pairs — instead of materialised payloads; workers
  re-materialise each chunk at grant time and drop it once mapped.  The
  bench runs an SIO dataset whose logical payload is at least **4x** a
  configured driver memory budget on the local and cluster backends and
  asserts the driver's RSS high-water growth stays under that budget,
  while the same job over the conventionally materialised dataset grows
  by the full payload.  Both runs must be bit-identical per rank.

* **Grant prefetch.**  Ranks pipeline CHUNK_REQ frames (up to
  ``1 + prefetch_window`` in flight), so the next grant's wire round
  trip hides under the current chunk's map.  The bench runs a
  many-chunk SIO job on the cluster backend with the window open
  (default) and closed (``prefetch_window=0``) and compares grant-wait
  p50/p99 straight from the runs' ``grant_latency_s`` histograms.

Smoke mode shrinks the payload (and the budget with it); the RSS bound
and the prefetch ordering are still evaluated, advisorily.
"""

import resource
import time

from repro.apps.sparse_int_occurrence import sio_dataset, sio_job
from repro.core import make_executor
from repro.harness import bench_smoke_enabled
from repro.obs import Observability
from repro.workloads import streamed

SMOKE = bench_smoke_enabled()

#: Driver memory budget the streamed runs must stay under (MiB of RSS
#: growth), and a logical payload at least 4x that.
BUDGET_MIB = 8 if SMOKE else 64
N_ELEMENTS = (8 << 20) if SMOKE else (64 << 20)  # uint32 -> 32 / 256 MiB
N_CHUNKS = 64
KEY_SPACE = 1 << 16
SEED = 99
N_WORKERS = 2 if SMOKE else 4

#: The prefetch comparison wants many grants per rank so the one
#: unavoidably cold first round-trip per rank stays below the p99 cut,
#: and a per-chunk map cost that exceeds the grant round-trip — at
#: paper scale a chunk maps for many milliseconds, so at bench scale
#: SIOMapper's per-chunk delay hook stands in for real map time
#: (without it the map is shorter than the wire RTT and there is
#: nothing for the window to hide the round-trip under).
PF_N_ELEMENTS = (256 << 10) if SMOKE else (4 << 20)
PF_N_CHUNKS = 256 if SMOKE else 1024
PF_MAP_SECONDS = 0.001


def _spec():
    return dict(
        n_elements=N_ELEMENTS,
        chunk_elements=N_ELEMENTS // N_CHUNKS,
        key_space=KEY_SPACE,
        seed=SEED,
    )


def _rss_mib() -> float:
    """This process's RSS high-water mark in MiB (ru_maxrss is KiB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _outputs_bytes(result):
    return [
        None if kv is None else (kv.keys.tobytes(), kv.values.tobytes())
        for kv in result.outputs
    ]


def _measure():
    job = sio_job(key_space=KEY_SPACE).with_config(enable_stealing=False)

    # Warm both backends on a toy payload first so imports, process
    # start-up, and executor machinery are already in the RSS baseline
    # and the streamed deltas below measure *data*, not infrastructure.
    warm = sio_dataset(1 << 12, chunk_elements=1 << 10, key_space=KEY_SPACE)
    for backend in ("local", "cluster"):
        make_executor(backend, N_WORKERS).run(job, dataset=warm)

    logical_mib = N_ELEMENTS * 4 / (1 << 20)
    rss0 = _rss_mib()

    # Streamed runs FIRST: ru_maxrss is a monotonic high-water mark, so
    # the materialised comparison runs must not precede them.
    growth = {}   # label -> driver RSS growth (MiB)
    wall = {}     # label -> seconds
    streamed_out = {}
    for backend in ("local", "cluster"):
        ds = streamed(sio_dataset, **_spec())
        t0 = time.perf_counter()
        result = make_executor(backend, N_WORKERS).run(job, dataset=ds)
        wall[f"{backend}/streamed"] = time.perf_counter() - t0
        growth[f"{backend}/streamed"] = _rss_mib() - rss0
        streamed_out[backend] = _outputs_bytes(result)

    for backend in ("local", "cluster"):
        ds = sio_dataset(**_spec())
        t0 = time.perf_counter()
        result = make_executor(backend, N_WORKERS).run(job, dataset=ds)
        wall[f"{backend}/materialised"] = time.perf_counter() - t0
        growth[f"{backend}/materialised"] = _rss_mib() - rss0
        assert _outputs_bytes(result) == streamed_out[backend], (
            f"{backend}: streamed run is not bit-identical to materialised"
        )

    # Grant prefetch on vs off, same job shape, cluster backend.
    pf_job = sio_job(
        key_space=KEY_SPACE, map_sleep_seconds=PF_MAP_SECONDS
    ).with_config(enable_stealing=False)
    pf_ds = sio_dataset(
        PF_N_ELEMENTS,
        chunk_elements=PF_N_ELEMENTS // PF_N_CHUNKS,
        key_space=KEY_SPACE,
        seed=SEED,
    )
    grant = {}    # window -> grant_latency_s summary
    pf_wall = {}  # window -> seconds
    for window in (0, 1):
        obs = Observability()
        t0 = time.perf_counter()
        make_executor(
            "cluster", N_WORKERS, prefetch_window=window, obs=obs
        ).run(pf_job, dataset=pf_ds)
        pf_wall[window] = time.perf_counter() - t0
        grant[window] = obs.metrics.histogram("grant_latency_s").summary()

    return logical_mib, growth, wall, grant, pf_wall


def _render(logical_mib, growth, wall, grant, pf_wall):
    lines = [
        f"streaming ingest — SIO, {logical_mib:.0f} MiB logical payload, "
        f"{N_CHUNKS} chunks, {N_WORKERS} workers, driver budget "
        f"{BUDGET_MIB} MiB (payload = {logical_mib / BUDGET_MIB:.1f}x budget)",
        f"{'run':>22} {'wall_ms':>9} {'rss_growth_MiB':>15}",
    ]
    for label in ("local/streamed", "cluster/streamed",
                  "local/materialised", "cluster/materialised"):
        lines.append(
            f"{label:>22} {wall[label] * 1e3:>9.0f} {growth[label]:>15.1f}"
        )
    lines += [
        "",
        "(streamed and materialised runs are asserted bit-identical per "
        "rank; rss growth is cumulative high-water over the run order "
        "above)",
        "",
        f"grant prefetch — cluster, {PF_N_CHUNKS} chunks over "
        f"{N_WORKERS} workers, {PF_MAP_SECONDS * 1e3:.0f} ms/chunk map: "
        "CHUNK_REQ pipelining on (window=1, default) vs off (window=0), "
        "grant_latency_s histogram",
        f"{'window':>7} {'grants':>7} {'p50_us':>8} {'p99_us':>8} "
        f"{'max_us':>8} {'wall_ms':>8}",
    ]
    for window in (0, 1):
        s = grant[window]
        lines.append(
            f"{window:>7} {s['count']:>7.0f} {s['p50'] * 1e6:>8.0f} "
            f"{s['p99'] * 1e6:>8.0f} {s['max'] * 1e6:>8.0f} "
            f"{pf_wall[window] * 1e3:>8.0f}"
        )
    return "\n".join(lines)


def test_streaming_ingest(benchmark, save_result, check):
    logical_mib, growth, wall, grant, pf_wall = benchmark.pedantic(
        _measure, rounds=1, iterations=1
    )
    save_result(
        "streaming_ingest",
        _render(logical_mib, growth, wall, grant, pf_wall),
    )
    benchmark.extra_info.update(
        {
            "payload_mib": round(logical_mib, 1),
            "budget_mib": BUDGET_MIB,
            "local_streamed_rss_growth_mib": round(
                growth["local/streamed"], 1
            ),
            "cluster_streamed_rss_growth_mib": round(
                growth["cluster/streamed"], 1
            ),
            "grant_p99_us_prefetch_off": round(grant[0]["p99"] * 1e6, 1),
            "grant_p99_us_prefetch_on": round(grant[1]["p99"] * 1e6, 1),
        }
    )

    # The payload really is out-of-budget...
    assert logical_mib >= 4 * BUDGET_MIB
    # ...and the streamed driver never buys it: RSS growth stays under
    # the budget on both process backends (the materialised runs, which
    # hold every chunk driver-side, are the scale of the payload).
    check(
        growth["local/streamed"] < BUDGET_MIB,
        "local streamed driver RSS growth stays under the budget",
    )
    check(
        growth["cluster/streamed"] < BUDGET_MIB,
        "cluster streamed driver RSS growth stays under the budget",
    )
    check(
        growth["cluster/materialised"] > logical_mib / 2,
        "materialised run pays payload-scale driver RSS",
    )
    # Prefetch hides the grant round-trip under the map: the pipelined
    # window's grant-wait tail must drop measurably.
    check(
        grant[1]["p99"] < grant[0]["p99"],
        "grant-wait p99 drops with the prefetch window open",
    )
    check(
        grant[1]["p50"] < grant[0]["p50"],
        "grant-wait p50 drops with the prefetch window open",
    )
